//! The `kvs` comms module: master on rank 0, caching slave elsewhere.
//!
//! Protocol topics (all under the `kvs` service):
//!
//! | topic              | payload                               | behaviour |
//! |--------------------|---------------------------------------|-----------|
//! | `kvs.put`          | `{k, v}`                              | write-back: store value object locally, queue `(key, SHA1)` tuple |
//! | `kvs.unlink`       | `{k}`                                 | queue an unlink tuple |
//! | `kvs.commit`       | `{}`                                  | flush the caller's tuples+objects to the master; response carries the new `(version, root)`, applied locally before the caller is answered (read-your-writes) |
//! | `kvs.push`         | `{tuples, objects}`                   | internal: a commit batch travelling up the tree |
//! | `kvs.shard.push`   | `{shard, tuples, objects[, fence]}`   | internal: a rank-addressed commit batch for one shard master (sharded sessions route writes directly, not up the tree) |
//! | `kvs.fence`        | `{name, nprocs}`                      | collective commit: contributions merge upstream (objects dedup, tuples concatenate); completion is the `kvs.setroot` event naming the fence |
//! | `kvs.fence.up`     | `{name, nprocs, count, tuples, objects}` | internal: merged fence contributions travelling up |
//! | `kvs.get`          | `{k}` / `{k, dir:true}`               | recursive lookup with fault-in through the cache chain |
//! | `kvs.load`         | `{id}`                                | internal: fault one object from the parent cache |
//! | `kvs.get_version`  | `{}`                                  | current root version |
//! | `kvs.wait_version` | `{version}`                           | respond once the root version reaches the target (causal consistency) |
//! | `kvs.watch`        | `{k}`                                 | respond now and on every change of `k` (streaming) |
//! | `kvs.unwatch`      | `{k}`                                 | cancel this requester's watch |
//! | `kvs.stats`        | `{}`                                  | cache statistics (tooling) |
//!
//! With `shards = N > 1` the namespace splits across N masters (ranks
//! `0..N`, one hash-tree root / version stream / batching window each;
//! see [`crate::shard`]). Commits partition by key hash and go
//! rank-addressed to the owning masters; the response is a **frontier**
//! (`{shards, frontier: [{shard, version, root}…]}`). Fences still
//! reduce up the tree, but the root then fans the merged batch out to
//! every contributing shard master and only releases waiters once all
//! contributions committed — the cross-shard fence frontier protocol.

use crate::master::{apply_tuples, Tuple};
use crate::object::KvsObject;
use crate::path::validate_key;
use crate::shard;
use crate::store::ObjectCache;
use flux_broker::{CommsModule, ModuleCtx};
use flux_hash::ObjectId;
use flux_proto::{Event, KvsMethod};
use flux_value::{Map, Value};
use flux_wire::{errnum, Message, MsgId, Payload};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// KVS tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct KvsConfig {
    /// Slave-cache entries unused for this many heartbeat epochs expire.
    pub expiry_epochs: u64,
    /// Fence aggregation window: contributions arriving within this
    /// window merge into one upstream message (the tree reduction).
    pub window_ns: u64,
    /// At-most-once dedup of transport-duplicated `kvs.push` requests and
    /// `kvs.fence.up` batches. Always `true` in production configurations;
    /// the model checker's mutation smoke-test sets it to `false` to
    /// re-introduce the historical fence/push double-apply bug and prove
    /// the explorer still catches that bug class.
    pub dedup: bool,
    /// Master-side commit batching window: concurrent `kvs.push`
    /// requests arriving within this window coalesce into **one**
    /// hash-tree walk, one version bump, and one `kvs.setroot`
    /// broadcast (tuples concatenate in arrival order, so the result
    /// equals applying them sequentially; content-addressed objects
    /// dedup in the merge). `0` disables batching — every push applies
    /// immediately, the pre-batching behaviour.
    pub batch_window_ns: u64,
    /// Pushes parked in the batch before it flushes without waiting for
    /// the window timer.
    pub batch_max: usize,
    /// Slave-side key→object lookup memo: a successful `kvs.get`
    /// resolution is remembered and served directly (no tree walk)
    /// until the root changes. Invalidated on every root switch — the
    /// same `apply_root` path that wakes `wait_version` waiters, so a
    /// get after `wait_version` can never see a stale memo.
    pub lookup_cache: bool,
    /// Number of namespace shards. `1` (the default) is the classic
    /// single-master KVS and takes exactly the legacy code paths.
    /// `N > 1` splits the namespace by key hash across masters on ranks
    /// `0..N` (the session must be at least `N` brokers wide; the value
    /// is clamped to the session size on start).
    pub shards: u32,
    /// Maximum concurrent per-shard pushes one commit fans out
    /// (`0` = unbounded). Lower values trade commit latency for bounded
    /// burst load on the shard masters.
    pub write_fanout: usize,
    /// Layered read path: `true` (default) faults objects up the tree —
    /// every ancestor is an L1 cache tier, and the root forwards
    /// rank-addressed to the owning shard master. `false` makes slaves
    /// fault straight from the shard master (read–write separated, no
    /// intermediate tiers).
    pub read_through_tree: bool,
}

impl Default for KvsConfig {
    fn default() -> Self {
        KvsConfig {
            expiry_epochs: 16,
            window_ns: 20_000,
            dedup: true,
            batch_window_ns: 5_000,
            batch_max: 64,
            lookup_cache: true,
            shards: 1,
            write_fanout: 0,
            read_through_tree: true,
        }
    }
}

/// A requester identity local to this broker: the bottom hop entry
/// (client hop for local clients, absent for module-local requests).
type Requester = Option<flux_wire::Rank>;

/// One `kvs.push` parked at the master awaiting a coalesced apply:
/// the request to answer, its tuples, and its value objects.
type ParkedPush = (Message, Vec<Tuple>, BTreeMap<ObjectId, Arc<KvsObject>>);

fn requester_of(msg: &Message) -> Requester {
    msg.header.hops.first().copied()
}

/// Per-requester write-back state (puts not yet committed/fenced).
#[derive(Default)]
struct PendingWrites {
    tuples: Vec<Tuple>,
    objects: BTreeMap<ObjectId, Arc<KvsObject>>,
}

/// Per-shard replicated state: one independent root, version stream,
/// `wait_version` parking lot, and lookup memo. Slot 0 doubles as the
/// classic single-master state when `shards == 1`.
struct ShardSlot {
    version: u64,
    root: ObjectId,
    version_waiters: Vec<(u64, Message)>,
    /// `(key, want_dir)` → resolved object id, valid for this slot's
    /// current root only (cleared on every root switch).
    lookup: HashMap<(String, bool), ObjectId>,
}

impl ShardSlot {
    fn new(root: ObjectId) -> ShardSlot {
        ShardSlot { version: 0, root, version_waiters: Vec::new(), lookup: HashMap::new() }
    }
}

/// One sharded commit in flight: per-shard pushes fan out (bounded by
/// `write_fanout`) and the committer is answered with the assembled
/// frontier once every shard acknowledged.
struct CommitJoin {
    req: Message,
    /// shard → `(version, root hex)` acknowledged so far.
    frontier: BTreeMap<u32, (u64, String)>,
    /// shard → (push payload, in-flight request id). `None` means not
    /// yet sent (write fan-out throttle) or transiently failed; the
    /// pump and the heartbeat (re-)send. Applying an identical tuple
    /// batch twice yields the same root, so a retried push whose first
    /// copy actually landed is harmless.
    outstanding: BTreeMap<u32, (Value, Option<MsgId>)>,
}

/// One cross-shard fence at the root coordinator: the merged batch,
/// partitioned per shard, fans out to the shard masters; waiters are
/// released only when **all** contributing shards committed (the
/// frontier is complete). Keyed deterministically (BTreeMap) because
/// the heartbeat retry loop iterates it.
struct FenceJoin {
    waiters: Vec<Message>,
    /// shard → `(version, root hex)` committed so far.
    frontier: BTreeMap<u32, (u64, String)>,
    /// shard → (push payload, in-flight request id). `None` after an
    /// error (e.g. the master is blacked out); the heartbeat re-sends.
    outstanding: BTreeMap<u32, (Value, Option<MsgId>)>,
}

/// One parked lookup walking the hash tree.
struct Walk {
    kind: WalkKind,
    components: Vec<String>,
    /// Next component index to consume.
    idx: usize,
    /// Object id to load next.
    cur: ObjectId,
    /// Directory listing requested instead of a value.
    want_dir: bool,
    /// Store version the walk started under. A walk can park on a
    /// fault-in and resume after a root switch; its (correct, but old)
    /// resolution must then not poison the lookup memo.
    version: u64,
    /// Shard whose tree this walk descends (0 when unsharded).
    shard: u32,
}

enum WalkKind {
    /// Answer this request with the final value.
    Get(Message),
    /// Re-check a watcher after a root switch.
    WatchCheck(u64),
}

/// How a walk ended.
enum WalkEnd {
    Value(Value),
    DirListing(Value),
    Err(u32),
}

struct Watcher {
    req: Message,
    key: String,
    requester: Requester,
    last: Option<Value>,
    /// Shard owning the watched key: only that slot's root switches
    /// re-walk this watcher.
    shard: u32,
}

/// Fence accumulation state at one broker.
#[derive(Default)]
struct FenceAcc {
    nprocs: u64,
    /// Total contributions seen here (at the master: session-wide total).
    count: u64,
    /// Contributions not yet flushed upstream (slaves only).
    unflushed_count: u64,
    tuples: Vec<Tuple>,
    objects: BTreeMap<ObjectId, Arc<KvsObject>>,
    /// Local client fence requests awaiting completion.
    waiters: Vec<Message>,
    /// Local requesters that already contributed: a process fencing the
    /// same name twice must not count as two of `nprocs` participants.
    contributors: HashSet<Requester>,
    /// `(source rank, batch id)` of child batches already merged here:
    /// a transport-duplicated `kvs.fence.up` frame must not double-count
    /// its contributions and complete the fence early.
    seen_batches: HashSet<(u32, u64)>,
    /// A flush window timer is pending.
    window_armed: bool,
}

/// The KVS comms module. Instantiate one per broker; the instance on
/// rank 0 becomes the master automatically.
pub struct KvsModule {
    cfg: KvsConfig,
    cache: ObjectCache,
    master: bool,
    /// The shard this broker masters (`rank < shards`), if any. In an
    /// unsharded session the root holds `Some(0)`.
    master_shard: Option<u32>,
    /// Per-shard root/version/waiter/memo state; exactly one slot when
    /// unsharded.
    slots: Vec<ShardSlot>,
    pending: HashMap<Requester, PendingWrites>,
    walks: HashMap<u64, Walk>,
    next_walk: u64,
    /// Object id → (walks parked on it, child `kvs.load` requests for it).
    load_waiters: HashMap<ObjectId, (Vec<u64>, Vec<Message>)>,
    /// Outstanding upstream load RPCs: response id → (object id, shard
    /// whose tree wants it).
    inflight_loads: HashMap<MsgId, (ObjectId, u32)>,
    /// Sharded loads that failed transiently (e.g. the shard master is
    /// blacked out): retried on the next heartbeat instead of reporting
    /// a false ENOENT, preserving monotonic reads across restarts.
    load_retries: Vec<(ObjectId, u32)>,
    /// Outstanding relayed pushes: our upstream request id → the original
    /// request to answer when the response unwinds.
    push_relays: HashMap<MsgId, Message>,
    /// Sharded commits awaiting their per-shard acknowledgements.
    commit_joins: BTreeMap<u64, CommitJoin>,
    next_join: u64,
    /// Outstanding `kvs.shard.push` requests of commits: response id →
    /// (commit join, shard).
    push_joins: HashMap<MsgId, (u64, u32)>,
    /// Cross-shard fences fanning out at the root coordinator.
    fence_joins: BTreeMap<String, FenceJoin>,
    /// Outstanding fence `kvs.shard.push` requests: response id →
    /// (fence name, shard).
    fence_push_joins: HashMap<MsgId, (String, u32)>,
    /// Shard-master memo of applied fence batches: fence name →
    /// (version, root hex). A root-side retry (its first push or our
    /// reply was lost in a blackout window) is answered from here
    /// instead of double-applying. Bounded FIFO.
    fence_applied: HashMap<String, (u64, String)>,
    fence_applied_order: VecDeque<String>,
    fences: HashMap<String, FenceAcc>,
    /// Fence window timer tokens.
    fence_tokens: HashMap<u64, String>,
    /// Monotonic id stamped on every flushed fence batch, so parents can
    /// recognise (and discard) transport-duplicated batches.
    next_fence_batch: u64,
    /// Recently handled `kvs.push` request ids, so a transport-duplicated
    /// push frame is applied (and relayed) at most once. Bounded FIFO.
    seen_pushes: HashSet<MsgId>,
    seen_push_order: VecDeque<MsgId>,
    next_token: u64,
    /// Watchers in a deterministic (BTreeMap) order: root switches
    /// re-walk them in insertion-id order, never HashMap order.
    watchers: BTreeMap<u64, Watcher>,
    next_watcher: u64,
    /// Commits applied at the master (for stats/tests). With batching,
    /// one application may cover many coalesced pushes.
    commits_applied: u64,
    /// Master-side push batch: parked `(request, tuples, objects)`
    /// entries awaiting one coalesced hash-tree walk.
    batch: Vec<ParkedPush>,
    /// Request ids currently parked in `batch`: a transport-duplicated
    /// push whose original is still parked must be dropped (the parked
    /// copy carries the reply obligation) rather than answered with the
    /// current — pre-apply — version.
    batch_ids: HashSet<MsgId>,
    /// A batch flush window timer is pending.
    batch_armed: bool,
    /// Timer tokens that mean "flush the push batch".
    batch_tokens: HashSet<u64>,
    /// Pushes that went through the batch path (stats/tests).
    pushes_batched: u64,
    /// Lookup-memo hits (stats/tests; the memos live in the slots).
    lookup_hits: u64,
    /// Serialized `kvs.load` reply payloads by object id. Objects are
    /// content-addressed and immutable, so a reply built once is valid
    /// forever; memoizing it turns the per-child re-serialization of a
    /// fan-out (each level of the cache chain answering every child with
    /// a fresh `to_value` of the same directory) into one build plus
    /// refcount bumps. Capped to bound memory on long-lived brokers.
    load_replies: HashMap<ObjectId, Payload>,
}

impl KvsModule {
    /// Creates a module with default tuning.
    pub fn new() -> KvsModule {
        Self::with_config(KvsConfig::default())
    }

    /// Creates a module with explicit tuning.
    pub fn with_config(cfg: KvsConfig) -> KvsModule {
        let cache = ObjectCache::new();
        let root = KvsObject::empty_dir().id();
        let slots = (0..cfg.shards.max(1)).map(|_| ShardSlot::new(root)).collect();
        KvsModule {
            cfg,
            cache,
            master: false,
            master_shard: None,
            slots,
            pending: HashMap::new(),
            walks: HashMap::new(),
            next_walk: 0,
            load_waiters: HashMap::new(),
            inflight_loads: HashMap::new(),
            load_retries: Vec::new(),
            push_relays: HashMap::new(),
            commit_joins: BTreeMap::new(),
            next_join: 0,
            push_joins: HashMap::new(),
            fence_joins: BTreeMap::new(),
            fence_push_joins: HashMap::new(),
            fence_applied: HashMap::new(),
            fence_applied_order: VecDeque::new(),
            fences: HashMap::new(),
            fence_tokens: HashMap::new(),
            next_fence_batch: 0,
            seen_pushes: HashSet::new(),
            seen_push_order: VecDeque::new(),
            next_token: 0,
            watchers: BTreeMap::new(),
            next_watcher: 0,
            commits_applied: 0,
            batch: Vec::new(),
            batch_ids: HashSet::new(),
            batch_armed: false,
            batch_tokens: HashSet::new(),
            pushes_batched: 0,
            lookup_hits: 0,
            load_replies: HashMap::new(),
        }
    }

    // ----- shard helpers ---------------------------------------------------

    fn sharded(&self) -> bool {
        self.cfg.shards > 1
    }

    /// Whether this broker is the authoritative store for `shard` (the
    /// shard master, or the classic master when unsharded).
    fn is_authoritative(&self, shard: u32) -> bool {
        if self.sharded() {
            self.master_shard == Some(shard)
        } else {
            self.master
        }
    }

    /// Shard owning `key` (0 when unsharded or for keys validation will
    /// reject anyway — those error out before touching shard state).
    fn shard_of(&self, key: &str) -> u32 {
        if !self.sharded() {
            return 0;
        }
        shard::shard_of_key(key, self.cfg.shards).unwrap_or(0)
    }

    /// Parses an optional `shard` request parameter (absent → 0).
    fn shard_param(&self, msg: &Message) -> Result<u32, ()> {
        match msg.payload.get("shard") {
            None => Ok(0),
            Some(v) => match v.as_uint() {
                Some(s) if s < u64::from(self.cfg.shards.max(1)) => Ok(s as u32),
                _ => Err(()),
            },
        }
    }

    /// Builds (or reuses) the shared `kvs.load` reply payload for `id`.
    fn load_reply(&mut self, id: ObjectId, obj: &KvsObject) -> Payload {
        if self.load_replies.len() > 8192 {
            self.load_replies.clear();
        }
        self.load_replies
            .entry(id)
            .or_insert_with(|| {
                Payload::from(Value::from_pairs([
                    ("id", Value::from(id.to_hex())),
                    ("obj", obj.to_value()),
                ]))
            })
            .clone()
    }

    // ----- payload helpers -------------------------------------------------

    fn tuples_to_value(tuples: &[Tuple]) -> Value {
        Value::Array(
            tuples
                .iter()
                .map(|(k, id)| {
                    Value::from_pairs([
                        ("k", Value::from(k.as_str())),
                        ("s", id.map(|i| Value::from(i.to_hex())).unwrap_or(Value::Null)),
                    ])
                })
                .collect(),
        )
    }

    fn tuples_from_value(v: Option<&Value>) -> Option<Vec<Tuple>> {
        let arr = v?.as_array()?;
        let mut out = Vec::with_capacity(arr.len());
        for t in arr {
            // flux-lint: allow(hotalloc) — decodes the wire batch into
            // the owned tuple list the apply walk consumes; the tuples
            // outlive the message, so the keys must be owned.
            let k = t.get("k")?.as_str()?.to_owned();
            let s = match t.get("s") {
                Some(Value::Null) | None => None,
                Some(sv) => Some(ObjectId::from_hex(sv.as_str()?).ok()?),
            };
            out.push((k, s));
        }
        Some(out)
    }

    fn objects_to_value(objects: &BTreeMap<ObjectId, Arc<KvsObject>>) -> Value {
        let mut m = Map::new();
        for (id, obj) in objects {
            m.insert(id.to_hex(), obj.to_value());
        }
        Value::Object(m)
    }

    fn objects_from_value(v: Option<&Value>) -> Option<BTreeMap<ObjectId, Arc<KvsObject>>> {
        let m = v?.as_object()?;
        let mut out = BTreeMap::new();
        for (hex, objv) in m {
            let id = ObjectId::from_hex(hex).ok()?;
            let obj = KvsObject::from_value(objv).ok()?;
            if obj.id() != id {
                return None;
            }
            out.insert(id, Arc::new(obj));
        }
        Some(out)
    }

    fn setroot_payload(&self, fences: Vec<String>) -> Value {
        Value::from_pairs([
            ("version", Value::from(self.slots[0].version as i64)),
            ("root", Value::from(self.slots[0].root.to_hex())),
            // flux-lint: allow(hotalloc) — builds the once-per-flush
            // setroot event payload; amortized over the whole batch.
            ("fences", Value::Array(fences.into_iter().map(Value::from).collect())),
        ])
    }

    /// Applies a newer root reference for `shard`; stale/duplicate
    /// versions are ignored, which (with the total event order) gives
    /// per-shard monotonic reads.
    fn apply_root_shard(&mut self, ctx: &mut ModuleCtx<'_>, shard: u32, version: u64, root: ObjectId) {
        let Some(slot) = self.slots.get_mut(shard as usize) else { return };
        if version <= slot.version {
            return;
        }
        slot.version = version;
        slot.root = root;
        // Root switch invalidates the key→object memo *before* any
        // wait_version waiter wakes below: a get issued after a
        // satisfied wait_version can never observe a stale memo entry.
        slot.lookup.clear();
        // Causal consistency: wake wait_version callers on this slot.
        let (ready, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut slot.version_waiters)
            .into_iter()
            .partition(|(v, _)| *v <= version);
        slot.version_waiters = rest;
        for (_, req) in ready {
            self.respond_slot_version(ctx, shard, &req);
        }
        // Re-check this shard's watchers against the new tree
        // (deterministic insertion-id order).
        // flux-lint: allow(hotalloc) — watcher-id snapshot, once per
        // root switch (per flushed batch, not per message): start_walk
        // below re-enters &mut self, so iterating the map directly
        // would hold its borrow across the walk.
        let ids: Vec<u64> = self
            .watchers
            .iter()
            .filter(|(_, w)| w.shard == shard)
            .map(|(id, _)| *id)
            .collect();
        for w in ids {
            let key = match self.watchers.get(&w) {
                // flux-lint: allow(hotalloc) — watched keys are short
                // and this runs once per watcher per root switch; the
                // walk parks the key in its own state.
                Some(watcher) => watcher.key.clone(),
                None => continue,
            };
            self.start_walk(ctx, WalkKind::WatchCheck(w), &key, false);
        }
    }

    /// Legacy single-slot root switch (slot 0).
    fn apply_root(&mut self, ctx: &mut ModuleCtx<'_>, version: u64, root: ObjectId) {
        self.apply_root_shard(ctx, 0, version, root);
    }

    fn respond_slot_version(&mut self, ctx: &mut ModuleCtx<'_>, shard: u32, req: &Message) {
        // Shard indices are validated before they reach here; clamping
        // (slots is never empty) keeps this total — a reply is always
        // produced.
        let si = (shard as usize).min(self.slots.len() - 1);
        let slot = &self.slots[si];
        let version = Value::from(slot.version as i64);
        let root = Value::from(slot.root.to_hex());
        if self.sharded() {
            ctx.respond(
                req,
                Value::from_pairs([
                    ("version", version),
                    ("root", root),
                    ("shard", Value::from(shard as i64)),
                ]),
            );
        } else {
            ctx.respond(req, Value::from_pairs([("version", version), ("root", root)]));
        }
    }

    fn respond_version(&mut self, ctx: &mut ModuleCtx<'_>, req: &Message) {
        self.respond_slot_version(ctx, 0, req);
    }

    /// Builds the frontier response payload: the consistent per-shard
    /// `(version, root)` cut a commit or fence observed.
    fn frontier_payload(&self, frontier: &BTreeMap<u32, (u64, String)>) -> Value {
        Value::from_pairs([
            ("shards", Value::from(self.cfg.shards as i64)),
            ("frontier", Self::frontier_entries(frontier)),
        ])
    }

    fn frontier_entries(frontier: &BTreeMap<u32, (u64, String)>) -> Value {
        Value::Array(
            frontier
                .iter()
                .map(|(s, (v, r))| {
                    Value::from_pairs([
                        ("shard", Value::from(*s as i64)),
                        ("version", Value::from(*v as i64)),
                        ("root", Value::from(r.as_str())),
                    ])
                })
                .collect(),
        )
    }

    /// Master only: apply a batch and announce the new root.
    fn master_apply(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        tuples: &[Tuple],
        objects: BTreeMap<ObjectId, Arc<KvsObject>>,
        fences: Vec<String>,
    ) {
        debug_assert!(self.master);
        for (id, obj) in objects {
            // Decoded objects are usually uniquely held here, so this is
            // a move, not a copy; the clone only runs for a shared Arc.
            self.cache.insert_with_id(id, Arc::try_unwrap(obj).unwrap_or_else(|a| (*a).clone()));
        }
        let new_root = apply_tuples(&mut self.cache, self.slots[0].root, tuples);
        let new_version = self.slots[0].version + 1;
        self.commits_applied += 1;
        // apply_root handles waiter/watcher wake-up uniformly.
        self.apply_root(ctx, new_version, new_root);
        ctx.publish(Event::KvsSetroot.topic(), self.setroot_payload(fences));
    }

    /// Shard master only: apply a batch to the owned slot. Quiet fence
    /// applies (`publish = false`) surface through the root's combined
    /// frontier event instead of a per-shard setroot.
    fn shard_apply(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        tuples: &[Tuple],
        objects: BTreeMap<ObjectId, Arc<KvsObject>>,
        fence: Option<&str>,
        publish: bool,
    ) -> (u64, ObjectId) {
        let shard = self.master_shard.unwrap_or(0);
        for (id, obj) in objects {
            // As in `master_apply`: move out of a uniquely-held Arc.
            self.cache.insert_with_id(id, Arc::try_unwrap(obj).unwrap_or_else(|a| (*a).clone()));
        }
        let si = shard as usize;
        let new_root = apply_tuples(&mut self.cache, self.slots[si].root, tuples);
        let new_version = self.slots[si].version + 1;
        self.commits_applied += 1;
        self.apply_root_shard(ctx, shard, new_version, new_root);
        if let Some(name) = fence {
            self.note_fence_applied(name, new_version, new_root.to_hex());
        }
        if publish {
            ctx.publish(
                Event::KvsSetroot.topic(),
                Value::from_pairs([
                    ("version", Value::from(new_version as i64)),
                    ("root", Value::from(new_root.to_hex())),
                    ("shard", Value::from(shard as i64)),
                    // flux-lint: allow(hotalloc) — an empty Vec::new
                    // never touches the allocator (capacity 0).
                    ("fences", Value::Array(Vec::new())),
                ]),
            );
        }
        (new_version, new_root)
    }

    fn note_fence_applied(&mut self, name: &str, version: u64, root_hex: String) {
        // flux-lint: allow(hotalloc) — once per collective fence, not
        // per commit; the applied-fence dedup memo owns its keys.
        if self.fence_applied.insert(name.to_owned(), (version, root_hex)).is_none() {
            // flux-lint: allow(hotalloc) — same: eviction order needs
            // its own owned copy of the fence name.
            self.fence_applied_order.push_back(name.to_owned());
            if self.fence_applied_order.len() > 64 {
                if let Some(old) = self.fence_applied_order.pop_front() {
                    self.fence_applied.remove(&old);
                }
            }
        }
    }

    // ----- put / commit ----------------------------------------------------

    fn handle_put(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message, unlink: bool) {
        let Some(key) = msg.payload.get("k").and_then(Value::as_str) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if let Err(e) = validate_key(key) {
            // Registry-aligned rejection: size/depth violations are
            // ENAMETOOLONG, shape violations EINVAL.
            ctx.respond_err(msg, e.errnum());
            return;
        }
        let requester = requester_of(msg);
        let pend = self.pending.entry(requester).or_default();
        if unlink {
            pend.tuples.push((key.to_owned(), None));
        } else {
            let val = msg.payload.get("v").cloned().unwrap_or(Value::Null);
            let obj = KvsObject::Val(val);
            let id = obj.id();
            pend.objects.insert(id, Arc::new(obj));
            pend.tuples.push((key.to_owned(), Some(id)));
        }
        ctx.respond(msg, Value::object());
    }

    fn handle_commit(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let requester = requester_of(msg);
        let pend = self.pending.remove(&requester).unwrap_or_default();
        if self.sharded() {
            self.commit_sharded(ctx, msg, pend);
            return;
        }
        if self.master {
            self.master_apply(ctx, &pend.tuples, pend.objects, Vec::new());
            self.respond_version(ctx, msg);
            return;
        }
        let payload = Value::from_pairs([
            ("tuples", Self::tuples_to_value(&pend.tuples)),
            ("objects", Self::objects_to_value(&pend.objects)),
        ]);
        match ctx.request_upstream(KvsMethod::Push.topic(), payload) {
            Ok(id) => {
                self.push_relays.insert(id, msg.clone());
            }
            Err(e) => ctx.respond_err(msg, e),
        }
    }

    /// Sharded commit: partition the write set by key hash and push each
    /// part rank-addressed to its owning master — writes never funnel
    /// through one root. The local shard (if this broker masters one)
    /// applies inline; the committer is answered with the assembled
    /// per-shard frontier once every part acknowledged.
    fn commit_sharded(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message, pend: PendingWrites) {
        let parts = shard::partition_tuples(pend.tuples, self.cfg.shards);
        let any = parts.iter().any(|p| !p.is_empty());
        let mut frontier = BTreeMap::new();
        let mut outstanding: BTreeMap<u32, (Value, Option<MsgId>)> = BTreeMap::new();
        for (s, part) in parts.into_iter().enumerate() {
            let s32 = s as u32;
            // An all-empty commit still bumps shard 0 — parity with the
            // unsharded no-op commit, which bumps the single version.
            if part.is_empty() && (any || s32 != 0) {
                continue;
            }
            let ids: HashSet<ObjectId> = part.iter().filter_map(|(_, id)| *id).collect();
            let objs: BTreeMap<ObjectId, Arc<KvsObject>> = pend
                .objects
                .iter()
                .filter(|(id, _)| ids.contains(id))
                .map(|(id, obj)| (*id, obj.clone()))
                .collect();
            if self.is_authoritative(s32) {
                let (v, root) = self.shard_apply(ctx, &part, objs, None, true);
                frontier.insert(s32, (v, root.to_hex()));
            } else {
                let payload = Value::from_pairs([
                    ("shard", Value::from(s32 as i64)),
                    ("tuples", Self::tuples_to_value(&part)),
                    ("objects", Self::objects_to_value(&objs)),
                ]);
                outstanding.insert(s32, (payload, None));
            }
        }
        self.next_join += 1;
        let join_id = self.next_join;
        self.commit_joins
            .insert(join_id, CommitJoin { req: msg.clone(), frontier, outstanding });
        self.pump_commit_join(ctx, join_id);
    }

    /// Sends unsent per-shard pushes while the write fan-out allows and
    /// answers the committer once the frontier is complete.
    fn pump_commit_join(&mut self, ctx: &mut ModuleCtx<'_>, join_id: u64) {
        let limit = if self.cfg.write_fanout == 0 { usize::MAX } else { self.cfg.write_fanout };
        loop {
            let Some(join) = self.commit_joins.get_mut(&join_id) else { return };
            let inflight = join.outstanding.values().filter(|(_, id)| id.is_some()).count();
            if inflight >= limit {
                break;
            }
            let next = join
                .outstanding
                .iter()
                .find(|(_, (_, id))| id.is_none())
                .map(|(s, (p, _))| (*s, p.clone()));
            let Some((s, payload)) = next else { break };
            let id = ctx.request_to_rank(shard::master_of(s), KvsMethod::ShardPush.topic(), payload);
            self.push_joins.insert(id, (join_id, s));
            if let Some(join) = self.commit_joins.get_mut(&join_id) {
                if let Some(ent) = join.outstanding.get_mut(&s) {
                    ent.1 = Some(id);
                }
            }
        }
        let Some(join) = self.commit_joins.get(&join_id) else { return };
        if join.outstanding.is_empty() {
            let Some(join) = self.commit_joins.remove(&join_id) else { return };
            let payload = self.frontier_payload(&join.frontier);
            ctx.respond(&join.req, payload);
        }
    }

    /// Heartbeat retry for a pending sharded commit: in-flight parts are
    /// forgotten and re-issued (bounded by the fan-out), so a commit
    /// caught in a shard-master blackout completes once the master is
    /// back instead of stalling forever. Safe to call repeatedly — a
    /// duplicate push re-applies an identical batch onto the same tree,
    /// producing the same root.
    fn retry_commit_pushes(&mut self, ctx: &mut ModuleCtx<'_>, join_id: u64) {
        let olds: Vec<MsgId> = match self.commit_joins.get_mut(&join_id) {
            Some(join) => join.outstanding.values_mut().filter_map(|ent| ent.1.take()).collect(),
            None => return,
        };
        for old in olds {
            ctx.forget_request(old);
            self.push_joins.remove(&old);
        }
        self.pump_commit_join(ctx, join_id);
    }

    /// Records a push request id; returns false if it was already seen
    /// (a transport-level duplicate — the fault layer can duplicate
    /// frames, and a late duplicate re-applying an old batch after newer
    /// commits would silently rewind keys).
    fn note_push(&mut self, id: MsgId) -> bool {
        if !self.seen_pushes.insert(id) {
            return false;
        }
        self.seen_push_order.push_back(id);
        if self.seen_push_order.len() > 4096 {
            if let Some(old) = self.seen_push_order.pop_front() {
                self.seen_pushes.remove(&old);
            }
        }
        true
    }

    fn handle_push(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if self.cfg.dedup && !self.note_push(msg.header.id) {
            if self.master {
                if self.batch_ids.contains(&msg.header.id) {
                    // The original is still parked in the push batch; its
                    // reply comes with the batch flush. Answering the
                    // duplicate now would expose the pre-apply version
                    // (a read-your-writes violation for the committer).
                    // flux-lint: allow(reply)
                    return;
                }
                // Re-answer with the current version: the response to the
                // first copy may itself have been lost in transit.
                self.respond_version(ctx, msg);
            }
            // A duplicate at a relay is dropped without a reply on
            // purpose: the first copy's forwarded request already
            // carries the response obligation.
            // flux-lint: allow(reply)
            return;
        }
        if self.master {
            let (Some(tuples), Some(objects)) = (
                Self::tuples_from_value(msg.payload.get("tuples")),
                Self::objects_from_value(msg.payload.get("objects")),
            ) else {
                ctx.respond_err(msg, errnum::EINVAL);
                return;
            };
            if self.cfg.batch_window_ns == 0 {
                // Batching disabled: apply immediately (the pre-batching
                // behaviour, and what the model checker's legacy
                // scenarios pin to keep per-push version counts exact).
                self.master_apply(ctx, &tuples, objects, Vec::new());
                self.respond_version(ctx, msg);
                return;
            }
            // Park the push: concurrent pushes inside the window share
            // one hash-tree walk, one version bump, and one setroot
            // broadcast. Tuples later concatenate in arrival order, so
            // the merged application equals applying them sequentially.
            self.pushes_batched += 1;
            self.batch_ids.insert(msg.header.id);
            self.batch.push((msg.clone(), tuples, objects));
            if self.batch.len() >= self.cfg.batch_max {
                self.flush_batch(ctx);
            } else if !self.batch_armed {
                self.batch_armed = true;
                self.next_token += 1;
                let token = self.next_token;
                self.batch_tokens.insert(token);
                ctx.set_timer(self.cfg.batch_window_ns, token);
            }
            return;
        }
        // Interior: relay upstream; the response's root is applied here
        // before unwinding, so every broker on the path is at least as new
        // as the committer.
        match ctx.request_upstream(KvsMethod::Push.topic(), msg.payload.clone()) {
            Ok(id) => {
                self.push_relays.insert(id, msg.clone());
            }
            Err(e) => ctx.respond_err(msg, e),
        }
    }

    /// A rank-addressed commit batch for one shard this broker masters.
    fn handle_shard_push(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let shard = msg.payload.get("shard").and_then(Value::as_uint).map(|s| s as u32);
        let Some(shard) = shard else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if !self.sharded() || self.master_shard != Some(shard) {
            // Batches addressed to a non-master rank are rejected, not
            // silently applied to the wrong tree.
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        let fence = msg.payload.get("fence").and_then(Value::as_str).map(str::to_owned);
        if let Some(name) = &fence {
            if let Some((v, root_hex)) = self.fence_applied.get(name).cloned() {
                // A coordinator retry of an already-applied fence batch
                // (our reply, or its first push, was lost to a blackout):
                // re-answer the recorded result, never double-apply.
                ctx.respond(
                    msg,
                    Value::from_pairs([
                        ("version", Value::from(v as i64)),
                        ("root", Value::from(root_hex)),
                        ("shard", Value::from(shard as i64)),
                    ]),
                );
                return;
            }
        }
        if self.cfg.dedup && !self.note_push(msg.header.id) {
            if self.batch_ids.contains(&msg.header.id) {
                // Original still parked in the batch; its reply comes
                // with the flush. flux-lint: allow(reply)
                return;
            }
            self.respond_slot_version(ctx, shard, msg);
            return;
        }
        let (Some(tuples), Some(objects)) = (
            Self::tuples_from_value(msg.payload.get("tuples")),
            Self::objects_from_value(msg.payload.get("objects")),
        ) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if fence.is_some() || self.cfg.batch_window_ns == 0 {
            // Fence parts apply immediately and quietly: the root's
            // combined frontier event is the one announcement, so a
            // fence can never be released against a half-applied cut.
            let quiet = fence.is_some();
            self.shard_apply(ctx, &tuples, objects, fence.as_deref(), !quiet);
            self.respond_slot_version(ctx, shard, msg);
            return;
        }
        // Ordinary commit batches coalesce exactly like legacy pushes.
        self.pushes_batched += 1;
        self.batch_ids.insert(msg.header.id);
        // flux-lint: allow(hotalloc) — parks the request so the batch
        // flush can answer it; Message clones are header-shallow (Arc'd
        // topic and payload), so this is refcount bumps, not a copy.
        self.batch.push((msg.clone(), tuples, objects));
        if self.batch.len() >= self.cfg.batch_max {
            self.flush_batch(ctx);
        } else if !self.batch_armed {
            self.batch_armed = true;
            self.next_token += 1;
            let token = self.next_token;
            self.batch_tokens.insert(token);
            ctx.set_timer(self.cfg.batch_window_ns, token);
        }
    }

    /// Master only: apply every parked push in one hash-tree walk and
    /// answer each committer with the single resulting version.
    fn flush_batch(&mut self, ctx: &mut ModuleCtx<'_>) {
        debug_assert!(self.master || self.master_shard.is_some());
        self.batch_armed = false;
        if self.batch.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.batch);
        self.batch_ids.clear();
        let mut tuples = Vec::new();
        let mut objects: BTreeMap<ObjectId, Arc<KvsObject>> = BTreeMap::new();
        let mut reqs = Vec::with_capacity(parked.len());
        for (req, t, o) in parked {
            tuples.extend(t);
            // Content-addressed objects: identical values across pushes
            // merge to one entry, exactly like the fence-side dedup.
            objects.extend(o);
            reqs.push(req);
        }
        if self.sharded() {
            let shard = self.master_shard.unwrap_or(0);
            self.shard_apply(ctx, &tuples, objects, None, true);
            for req in reqs {
                self.respond_slot_version(ctx, shard, &req);
            }
            return;
        }
        // flux-lint: allow(hotalloc) — an empty Vec::new never touches
        // the allocator (capacity 0).
        self.master_apply(ctx, &tuples, objects, Vec::new());
        for req in reqs {
            self.respond_version(ctx, &req);
        }
    }

    // ----- fence -----------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn fence_contribute(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        name: &str,
        nprocs: u64,
        count: u64,
        tuples: Vec<Tuple>,
        objects: BTreeMap<ObjectId, Arc<KvsObject>>,
        waiter: Option<Message>,
    ) {
        let acc = self.fences.entry(name.to_owned()).or_default();
        if acc.nprocs == 0 {
            acc.nprocs = nprocs;
        }
        acc.count += count;
        acc.unflushed_count += count;
        acc.tuples.extend(tuples);
        // Objects dedup here: identical (redundant) values merge to one
        // entry at every hop of the tree — the paper's Fig. 3 effect.
        acc.objects.extend(objects);
        if let Some(w) = waiter {
            acc.waiters.push(w);
        }
        if self.master {
            self.check_fence_complete(ctx, name);
        } else {
            self.next_token += 1;
            let token = self.next_token;
            if let Some(acc) = self.fences.get_mut(name) {
                if !acc.window_armed {
                    acc.window_armed = true;
                    self.fence_tokens.insert(token, name.to_owned());
                    ctx.set_timer(self.cfg.window_ns, token);
                }
            }
        }
    }

    fn check_fence_complete(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        debug_assert!(self.master);
        let Some(acc) = self.fences.get(name) else { return };
        if acc.nprocs == 0 || acc.count < acc.nprocs {
            return;
        }
        let Some(acc) = self.fences.remove(name) else { return };
        if self.sharded() {
            self.fence_join_start(ctx, name, acc);
            return;
        }
        self.master_apply(ctx, &acc.tuples, acc.objects, vec![name.to_owned()]);
        // Local waiters at the master complete immediately.
        for req in acc.waiters {
            self.respond_version(ctx, &req);
        }
    }

    /// Root coordinator, sharded: fan the merged fence batch out to the
    /// contributing shard masters. Waiters release only when every
    /// contribution committed — a fence can never be released with a
    /// missing shard contribution, even across master blackouts (the
    /// heartbeat re-sends unacknowledged parts; masters dedup retries
    /// through the `fence_applied` memo).
    fn fence_join_start(&mut self, ctx: &mut ModuleCtx<'_>, name: &str, acc: FenceAcc) {
        let parts = shard::partition_tuples(acc.tuples, self.cfg.shards);
        let any = parts.iter().any(|p| !p.is_empty());
        let mut frontier = BTreeMap::new();
        let mut outstanding: BTreeMap<u32, (Value, Option<MsgId>)> = BTreeMap::new();
        for (s, part) in parts.into_iter().enumerate() {
            let s32 = s as u32;
            // A contribution-free fence still bumps shard 0, matching
            // the unsharded fence's unconditional version bump.
            if part.is_empty() && (any || s32 != 0) {
                continue;
            }
            let ids: HashSet<ObjectId> = part.iter().filter_map(|(_, id)| *id).collect();
            let objs: BTreeMap<ObjectId, Arc<KvsObject>> = acc
                .objects
                .iter()
                .filter(|(id, _)| ids.contains(id))
                .map(|(id, obj)| (*id, obj.clone()))
                .collect();
            if self.is_authoritative(s32) {
                let (v, root) = self.shard_apply(ctx, &part, objs, Some(name), false);
                frontier.insert(s32, (v, root.to_hex()));
            } else {
                let payload = Value::from_pairs([
                    ("shard", Value::from(s32 as i64)),
                    ("fence", Value::from(name)),
                    ("tuples", Self::tuples_to_value(&part)),
                    ("objects", Self::objects_to_value(&objs)),
                ]);
                outstanding.insert(s32, (payload, None));
            }
        }
        let done = outstanding.is_empty();
        self.fence_joins
            .insert(name.to_owned(), FenceJoin { waiters: acc.waiters, frontier, outstanding });
        if done {
            self.finish_fence_join(ctx, name);
        } else {
            self.send_fence_pushes(ctx, name);
        }
    }

    /// (Re-)sends every unacknowledged per-shard part of a fence join.
    /// Safe to call repeatedly: in-flight requests are forgotten and
    /// re-issued, and shard masters answer duplicates from the
    /// `fence_applied` memo.
    fn send_fence_pushes(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        let Some(join) = self.fence_joins.get(name) else { return };
        let sends: Vec<(u32, Value, Option<MsgId>)> =
            join.outstanding.iter().map(|(s, (p, old))| (*s, p.clone(), *old)).collect();
        for (s, payload, old) in sends {
            if let Some(old) = old {
                ctx.forget_request(old);
                self.fence_push_joins.remove(&old);
            }
            let id = ctx.request_to_rank(shard::master_of(s), KvsMethod::ShardPush.topic(), payload);
            self.fence_push_joins.insert(id, (name.to_owned(), s));
            if let Some(join) = self.fence_joins.get_mut(name) {
                if let Some(ent) = join.outstanding.get_mut(&s) {
                    ent.1 = Some(id);
                }
            }
        }
    }

    /// All shard contributions committed: answer waiters with the
    /// frontier and broadcast it as one combined setroot event (slaves
    /// adopt every slot and release their local waiters atomically).
    fn finish_fence_join(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        let Some(join) = self.fence_joins.remove(name) else { return };
        let reply = self.frontier_payload(&join.frontier);
        for req in join.waiters {
            ctx.respond(&req, reply.clone());
        }
        ctx.publish(
            Event::KvsSetroot.topic(),
            Value::from_pairs([
                ("shards", Self::frontier_entries(&join.frontier)),
                ("fences", Value::Array(vec![Value::from(name)])),
            ]),
        );
    }

    fn flush_fence(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        debug_assert!(!self.master);
        self.next_fence_batch += 1;
        let batch = self.next_fence_batch;
        let Some(acc) = self.fences.get_mut(name) else { return };
        acc.window_armed = false;
        if acc.unflushed_count == 0 {
            return;
        }
        let count = std::mem::take(&mut acc.unflushed_count);
        let tuples = std::mem::take(&mut acc.tuples);
        let objects = std::mem::take(&mut acc.objects);
        let payload = Value::from_pairs([
            ("name", Value::from(name)),
            ("nprocs", Value::from(acc.nprocs as i64)),
            ("count", Value::from(count as i64)),
            ("src", Value::from(ctx.rank().0)),
            ("batch", Value::from(batch as i64)),
            ("tuples", Self::tuples_to_value(&tuples)),
            ("objects", Self::objects_to_value(&objects)),
        ]);
        let _ = ctx.notify_upstream(KvsMethod::FenceUp.topic(), payload);
    }

    fn handle_fence(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let (Some(name), Some(nprocs)) = (
            msg.payload.get("name").and_then(Value::as_str).map(str::to_owned),
            msg.payload.get("nprocs").and_then(Value::as_uint),
        ) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        // nprocs == 0 can never be satisfied (`count < nprocs` starts
        // false but the accumulator is skipped while nprocs is 0): the
        // caller would hang forever, so reject it up front.
        if nprocs == 0 {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        let requester = requester_of(msg);
        let acc = self.fences.entry(name.clone()).or_default();
        if acc.nprocs != 0 && acc.nprocs != nprocs {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        if !acc.contributors.insert(requester) {
            // A duplicate contribution from the same process would
            // complete the fence one real participant early.
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        let pend = self.pending.remove(&requester).unwrap_or_default();
        self.fence_contribute(ctx, &name, nprocs, 1, pend.tuples, pend.objects, Some(msg.clone()));
    }

    fn handle_fence_up(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let (Some(name), Some(nprocs), Some(count), Some(tuples), Some(objects)) = (
            msg.payload.get("name").and_then(Value::as_str).map(str::to_owned),
            msg.payload.get("nprocs").and_then(Value::as_uint),
            msg.payload.get("count").and_then(Value::as_uint),
            Self::tuples_from_value(msg.payload.get("tuples")),
            Self::objects_from_value(msg.payload.get("objects")),
        ) else {
            // One-way message: nothing to answer; drop.
            return;
        };
        if nprocs == 0 {
            // Malformed child batch; merging it would park forever.
            return;
        }
        // Idempotence under duplicated frames: each flushed batch is
        // stamped (src, batch); merge any given batch at most once.
        if let (true, Some(src), Some(batch)) = (
            self.cfg.dedup,
            msg.payload.get("src").and_then(Value::as_uint),
            msg.payload.get("batch").and_then(Value::as_uint),
        ) {
            let acc = self.fences.entry(name.clone()).or_default();
            if !acc.seen_batches.insert((src as u32, batch)) {
                return; // already merged this batch
            }
        }
        self.fence_contribute(ctx, &name, nprocs, count, tuples, objects, None);
    }

    // ----- get / load ------------------------------------------------------

    fn start_walk(&mut self, ctx: &mut ModuleCtx<'_>, kind: WalkKind, key: &str, want_dir: bool) {
        let components = match crate::path::key_components(key) {
            Ok(c) => c,
            Err(e) => {
                if let WalkKind::Get(req) = kind {
                    ctx.respond_err(&req, e.errnum());
                }
                return;
            }
        };
        let shard = self.shard_of(key);
        let (cur, version) = match self.slots.get(shard as usize) {
            Some(slot) => (slot.root, slot.version),
            None => return,
        };
        self.next_walk += 1;
        let id = self.next_walk;
        self.walks.insert(id, Walk { kind, components, idx: 0, cur, want_dir, version, shard });
        self.step_walk(ctx, id);
    }

    /// Advances a walk until it finishes or parks on a missing object.
    fn step_walk(&mut self, ctx: &mut ModuleCtx<'_>, walk_id: u64) {
        loop {
            let Some(walk) = self.walks.get(&walk_id) else { return };
            let cur = walk.cur;
            let Some(obj) = self.cache.get(cur) else {
                self.park_walk(ctx, walk_id, cur);
                return;
            };
            let Some(walk) = self.walks.get_mut(&walk_id) else { return };
            if walk.idx == walk.components.len() {
                // Watch checks accept either kind: a watched directory's
                // listing changes whenever any key under it (at any path
                // depth) changes, because child hashes cascade upward —
                // the paper's directory-watch semantics for free.
                let watching = matches!(walk.kind, WalkKind::WatchCheck(_));
                let end = match (&*obj, walk.want_dir || watching) {
                    (KvsObject::Val(v), _) if !walk.want_dir => WalkEnd::Value(v.clone()),
                    (KvsObject::Val(_), _) => WalkEnd::Err(errnum::ENOTDIR),
                    (KvsObject::Dir(_), false) => WalkEnd::Err(errnum::EISDIR),
                    (KvsObject::Dir(entries), true) => {
                        let mut listing = Map::new();
                        for (name, child) in entries {
                            listing.insert(name.clone(), Value::from(child.to_hex()));
                        }
                        WalkEnd::DirListing(Value::Object(listing))
                    }
                };
                // Memoize successful get resolutions under the current
                // root: repeat gets of the same key skip the walk. A walk
                // that parked across a root switch resolved against the
                // old tree — its answer is legal for the caller (the get
                // predates the switch) but must not enter the memo, or a
                // get issued *after* a satisfied wait_version could read
                // the stale object.
                let shard = walk.shard;
                let walk_version = walk.version;
                let memo_key = (matches!(walk.kind, WalkKind::Get(_))
                    && matches!(end, WalkEnd::Value(_) | WalkEnd::DirListing(_)))
                .then(|| (walk.components.join("."), walk.want_dir));
                let slot_version =
                    self.slots.get(shard as usize).map(|s| s.version).unwrap_or(0);
                if let Some(memo) = memo_key {
                    if self.cfg.lookup_cache
                        && !self.is_authoritative(shard)
                        && walk_version == slot_version
                    {
                        if let Some(slot) = self.slots.get_mut(shard as usize) {
                            slot.lookup.insert(memo, cur);
                        }
                    }
                }
                self.finish_walk(ctx, walk_id, end);
                return;
            }
            match &*obj {
                KvsObject::Dir(entries) => {
                    let comp = &walk.components[walk.idx];
                    match entries.get(comp) {
                        Some(next) => {
                            walk.cur = *next;
                            walk.idx += 1;
                        }
                        None => {
                            self.finish_walk(ctx, walk_id, WalkEnd::Err(errnum::ENOENT));
                            return;
                        }
                    }
                }
                KvsObject::Val(_) => {
                    self.finish_walk(ctx, walk_id, WalkEnd::Err(errnum::ENOTDIR));
                    return;
                }
            }
        }
    }

    fn park_walk(&mut self, ctx: &mut ModuleCtx<'_>, walk_id: u64, missing: ObjectId) {
        let shard = match self.walks.get(&walk_id) {
            Some(w) => w.shard,
            None => return,
        };
        if self.is_authoritative(shard) {
            // Authoritative store: a miss is a hard ENOENT.
            self.finish_walk(ctx, walk_id, WalkEnd::Err(errnum::ENOENT));
            return;
        }
        let entry = self.load_waiters.entry(missing).or_default();
        entry.0.push(walk_id);
        let need_request = entry.0.len() == 1 && entry.1.is_empty();
        if need_request {
            self.request_load(ctx, missing, shard);
        }
    }

    /// Faults one object in through the layered read path. Unsharded:
    /// always up the tree (legacy bytes). Sharded with
    /// `read_through_tree`: up the tree — ancestors are L1 tiers — and
    /// the root forwards rank-addressed to the owning master; without
    /// it, straight to the shard master.
    fn request_load(&mut self, ctx: &mut ModuleCtx<'_>, id: ObjectId, shard: u32) {
        if !self.sharded() {
            let payload = Value::from_pairs([("id", Value::from(id.to_hex()))]);
            match ctx.request_upstream(KvsMethod::Load.topic(), payload) {
                Ok(req_id) => {
                    self.inflight_loads.insert(req_id, (id, 0));
                }
                Err(_) => {
                    self.complete_load(ctx, id, None);
                }
            }
            return;
        }
        let payload = Value::from_pairs([
            ("id", Value::from(id.to_hex())),
            ("shard", Value::from(shard as i64)),
        ]);
        if self.cfg.read_through_tree {
            if let Ok(req_id) = ctx.request_upstream(KvsMethod::Load.topic(), payload.clone()) {
                self.inflight_loads.insert(req_id, (id, shard));
                return;
            }
            // No parent (we are the root): fall through to the direct
            // rank-addressed tier below.
        }
        if self.is_authoritative(shard) {
            self.complete_load(ctx, id, None);
            return;
        }
        let req_id = ctx.request_to_rank(shard::master_of(shard), KvsMethod::Load.topic(), payload);
        self.inflight_loads.insert(req_id, (id, shard));
    }

    /// Resolves a load: `obj = None` means the object does not exist.
    fn complete_load(&mut self, ctx: &mut ModuleCtx<'_>, id: ObjectId, obj: Option<KvsObject>) {
        if let Some(obj) = obj {
            // Read-path caching at every level of the chain: this is what
            // lets C consumers share log2(C) transfers (Fig. 4 model).
            self.cache.insert_with_id(id, obj);
        }
        let Some((walks, requests)) = self.load_waiters.remove(&id) else { return };
        let available = self.cache.contains(id);
        // One shared reply payload answers every child waiting on this id.
        let reply = self.cache.get(id).map(|obj| self.load_reply(id, &obj));
        for req in requests {
            match &reply {
                Some(payload) => ctx.respond(&req, payload.clone()),
                None => ctx.respond_err(&req, errnum::ENOENT),
            }
        }
        for walk_id in walks {
            if available {
                self.step_walk(ctx, walk_id);
            } else {
                self.finish_walk(ctx, walk_id, WalkEnd::Err(errnum::ENOENT));
            }
        }
    }

    fn finish_walk(&mut self, ctx: &mut ModuleCtx<'_>, walk_id: u64, end: WalkEnd) {
        let Some(walk) = self.walks.remove(&walk_id) else { return };
        match walk.kind {
            WalkKind::Get(req) => match end {
                WalkEnd::Value(v) => ctx.respond(&req, Value::from_pairs([("v", v)])),
                WalkEnd::DirListing(l) => ctx.respond(&req, Value::from_pairs([("dir", l)])),
                WalkEnd::Err(e) => ctx.respond_err(&req, e),
            },
            WalkKind::WatchCheck(watcher_id) => {
                let new_val = match end {
                    WalkEnd::Value(v) => Some(v),
                    WalkEnd::DirListing(l) => Some(l),
                    WalkEnd::Err(_) => None,
                };
                let Some(w) = self.watchers.get_mut(&watcher_id) else { return };
                if w.last != new_val {
                    w.last = new_val.clone();
                    let payload = Value::from_pairs([
                        ("k", Value::from(w.key.as_str())),
                        ("v", new_val.unwrap_or(Value::Null)),
                    ]);
                    let req = w.req.clone();
                    ctx.respond(&req, payload);
                }
            }
        }
    }

    fn handle_get(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(key) = msg.payload.get("k").and_then(Value::as_str).map(str::to_owned) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        let want_dir = msg.payload.get("dir").and_then(Value::as_bool).unwrap_or(false);
        let shard = self.shard_of(&key);
        // Memo fast path: a prior resolution under the current root maps
        // the key straight to its object — no per-component tree walk.
        if self.cfg.lookup_cache && !self.is_authoritative(shard) {
            let memo = (key.clone(), want_dir);
            let hit = self.slots.get(shard as usize).and_then(|s| s.lookup.get(&memo).copied());
            if let Some(id) = hit {
                if let Some(obj) = self.cache.get(id) {
                    let payload = match (&*obj, want_dir) {
                        (KvsObject::Val(v), false) => {
                            Some(Value::from_pairs([("v", v.clone())]))
                        }
                        (KvsObject::Dir(entries), true) => {
                            let mut listing = Map::new();
                            for (name, child) in entries {
                                listing.insert(name.clone(), Value::from(child.to_hex()));
                            }
                            Some(Value::from_pairs([("dir", Value::Object(listing))]))
                        }
                        _ => None,
                    };
                    if let Some(p) = payload {
                        self.lookup_hits += 1;
                        ctx.respond(msg, p);
                        return;
                    }
                }
                // The memoized object expired from the cache (or shape
                // mismatch): drop the entry and fault it back in through
                // the normal walk.
                if let Some(slot) = self.slots.get_mut(shard as usize) {
                    slot.lookup.remove(&memo);
                }
            }
        }
        self.start_walk(ctx, WalkKind::Get(msg.clone()), &key, want_dir);
    }

    fn handle_load(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let id = msg
            .payload
            .get("id")
            .and_then(Value::as_str)
            .and_then(|h| ObjectId::from_hex(h).ok());
        let Some(id) = id else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if let Some(obj) = self.cache.get(id) {
            let payload = self.load_reply(id, &obj);
            ctx.respond(msg, payload);
            return;
        }
        let shard = msg.payload.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32;
        if self.is_authoritative(shard) {
            ctx.respond_err(msg, errnum::ENOENT);
            return;
        }
        let entry = self.load_waiters.entry(id).or_default();
        entry.1.push(msg.clone());
        let need_request = entry.0.is_empty() && entry.1.len() == 1;
        if need_request {
            self.request_load(ctx, id, shard);
        }
    }

    // ----- watch -----------------------------------------------------------

    fn handle_watch(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(key) = msg.payload.get("k").and_then(Value::as_str).map(str::to_owned) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        self.next_watcher += 1;
        let id = self.next_watcher;
        let shard = self.shard_of(&key);
        self.watchers.insert(
            id,
            Watcher {
                req: msg.clone(),
                key: key.clone(),
                requester: requester_of(msg),
                // Sentinel distinct from any real state so the initial
                // check always responds (even for a missing key -> null).
                last: Some(Value::from("\u{0}__kvs_unset__")),
                shard,
            },
        );
        self.start_walk(ctx, WalkKind::WatchCheck(id), &key, false);
    }

    fn handle_unwatch(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(key) = msg.payload.get("k").and_then(Value::as_str) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        let requester = requester_of(msg);
        self.watchers.retain(|_, w| !(w.key == key && w.requester == requester));
        ctx.respond(msg, Value::object());
    }

    // ----- introspection ---------------------------------------------------

    /// Current root version of shard 0 (for tests and tools).
    pub fn version(&self) -> u64 {
        self.slots[0].version
    }

    /// Current root version of one shard (for tests and tools).
    pub fn shard_version(&self, shard: u32) -> u64 {
        self.slots.get(shard as usize).map(|s| s.version).unwrap_or(0)
    }

    /// Number of namespace shards this module is configured for.
    pub fn shards(&self) -> u32 {
        self.cfg.shards.max(1)
    }

    /// Cache statistics (for tests and tools).
    pub fn cache_stats(&self) -> crate::store::CacheStats {
        self.cache.stats()
    }

    /// Pushes that went through the master batch path (for tests).
    pub fn pushes_batched(&self) -> u64 {
        self.pushes_batched
    }

    /// Gets served from the slave lookup memo (for tests).
    pub fn lookup_hits(&self) -> u64 {
        self.lookup_hits
    }

    /// Commits applied at the master; with batching one application may
    /// cover many pushes (for tests).
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }
}

impl Default for KvsModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for KvsModule {
    fn name(&self) -> &'static str {
        "kvs"
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![Event::KvsSetroot.topic_str().to_owned()]
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        // A session narrower than the shard count degrades gracefully:
        // clamp, so every shard master actually exists.
        self.cfg.shards = self.cfg.shards.max(1).min(ctx.size());
        if self.slots.len() != self.cfg.shards as usize {
            let root = KvsObject::empty_dir().id();
            self.slots = (0..self.cfg.shards).map(|_| ShardSlot::new(root)).collect();
        }
        self.master = ctx.is_root();
        self.master_shard = if self.sharded() {
            let rank = ctx.rank().0;
            (rank < self.cfg.shards).then_some(rank)
        } else {
            self.master.then_some(0)
        };
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match KvsMethod::from_method(msg.header.topic.method()) {
            Some(KvsMethod::Put) => self.handle_put(ctx, msg, false),
            Some(KvsMethod::Unlink) => self.handle_put(ctx, msg, true),
            Some(KvsMethod::Commit) => self.handle_commit(ctx, msg),
            Some(KvsMethod::Push) => self.handle_push(ctx, msg),
            Some(KvsMethod::ShardPush) => self.handle_shard_push(ctx, msg),
            Some(KvsMethod::Fence) => self.handle_fence(ctx, msg),
            Some(KvsMethod::FenceUp) => self.handle_fence_up(ctx, msg),
            Some(KvsMethod::Get) => self.handle_get(ctx, msg),
            Some(KvsMethod::Load) => self.handle_load(ctx, msg),
            Some(KvsMethod::GetVersion) => match self.shard_param(msg) {
                Ok(shard) => self.respond_slot_version(ctx, shard, msg),
                Err(()) => ctx.respond_err(msg, errnum::EINVAL),
            },
            Some(KvsMethod::WaitVersion) => {
                let Some(v) = msg.payload.get("version").and_then(Value::as_uint) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                let Ok(shard) = self.shard_param(msg) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                let Some(slot) = self.slots.get_mut(shard as usize) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                if slot.version >= v {
                    self.respond_slot_version(ctx, shard, msg);
                } else {
                    slot.version_waiters.push((v, msg.clone()));
                }
            }
            Some(KvsMethod::Watch) => self.handle_watch(ctx, msg),
            Some(KvsMethod::Unwatch) => self.handle_unwatch(ctx, msg),
            Some(KvsMethod::Stats) => {
                let s = self.cache.stats();
                let mut pairs = vec![
                    ("entries", Value::from(s.entries)),
                    ("bytes", Value::from(s.bytes)),
                    ("hits", Value::from(s.hits as i64)),
                    ("misses", Value::from(s.misses as i64)),
                    ("expired", Value::from(s.expired as i64)),
                    ("version", Value::from(self.slots[0].version as i64)),
                    ("commits", Value::from(self.commits_applied as i64)),
                    ("pushes_batched", Value::from(self.pushes_batched as i64)),
                    ("lookup_hits", Value::from(self.lookup_hits as i64)),
                ];
                if self.sharded() {
                    pairs.push(("shards", Value::from(self.cfg.shards as i64)));
                }
                ctx.respond(msg, Value::from_pairs(pairs));
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let id = msg.header.id;
        if let Some((obj_id, shard)) = self.inflight_loads.remove(&id) {
            if msg.is_error() && self.sharded() && msg.header.errnum != errnum::ENOENT {
                // Transient failure (e.g. the shard master is blacked
                // out): a false ENOENT here would violate monotonic
                // reads, so keep the waiters parked and retry on the
                // next heartbeat.
                self.load_retries.push((obj_id, shard));
                return;
            }
            let obj = if msg.is_error() {
                None
            } else {
                msg.payload.get("obj").and_then(|v| KvsObject::from_value(v).ok())
            };
            // Verify the content address before trusting a loaded object.
            let obj = obj.filter(|o| o.id() == obj_id);
            if obj.is_some() {
                // The upstream reply payload is exactly the reply this
                // broker would build for its own children — seed the memo
                // with it so the object is serialized once session-wide
                // (at the master), not once per level of the cache chain.
                self.load_replies.entry(obj_id).or_insert_with(|| msg.payload.clone());
            }
            self.complete_load(ctx, obj_id, obj);
            return;
        }
        if let Some(original) = self.push_relays.remove(&id) {
            if msg.is_error() {
                ctx.respond_err(&original, msg.header.errnum);
                return;
            }
            let version = msg.payload.get("version").and_then(Value::as_uint).unwrap_or(0);
            let root = msg
                .payload
                .get("root")
                .and_then(Value::as_str)
                .and_then(|h| ObjectId::from_hex(h).ok());
            if let Some(root) = root {
                // Read-your-writes: adopt the new root before answering.
                self.apply_root(ctx, version, root);
            }
            ctx.respond(&original, msg.payload.clone());
            return;
        }
        if let Some((join_id, pshard)) = self.push_joins.remove(&id) {
            if msg.is_error() {
                if msg.header.errnum == errnum::EINVAL {
                    // Validation failure: retrying cannot succeed, the
                    // commit fails as a whole. Parts already applied stay
                    // applied (the client's history treats an errored
                    // commit as staged-uncertain).
                    if let Some(join) = self.commit_joins.remove(&join_id) {
                        ctx.respond_err(&join.req, msg.header.errnum);
                    }
                    return;
                }
                // Transient failure (e.g. the shard master is blacked
                // out): mark the part unacknowledged; the heartbeat
                // re-sends it.
                if let Some(join) = self.commit_joins.get_mut(&join_id) {
                    if let Some(ent) = join.outstanding.get_mut(&pshard) {
                        ent.1 = None;
                    }
                }
                return;
            }
            let shard = msg.payload.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32;
            let version = msg.payload.get("version").and_then(Value::as_uint).unwrap_or(0);
            let root_hex = msg
                .payload
                .get("root")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_default();
            if let Ok(root) = ObjectId::from_hex(&root_hex) {
                // Read-your-writes: adopt the shard's new root before the
                // committer can be answered.
                self.apply_root_shard(ctx, shard, version, root);
            }
            if let Some(join) = self.commit_joins.get_mut(&join_id) {
                join.outstanding.remove(&pshard);
                join.frontier.insert(shard, (version, root_hex));
            }
            self.pump_commit_join(ctx, join_id);
            return;
        }
        if let Some((name, shard)) = self.fence_push_joins.remove(&id) {
            if msg.is_error() {
                if msg.header.errnum == errnum::EINVAL {
                    // Validation failure from the shard master: re-sending
                    // the same part can never succeed, so the fence fails
                    // as a whole instead of retrying forever. Shards
                    // already applied stay applied, like an errored
                    // sharded commit. Waiters parked on other ranks are
                    // failed through the broadcast, mirroring the release
                    // path in `finish_fence_join`.
                    if let Some(join) = self.fence_joins.remove(&name) {
                        for req in join.waiters {
                            ctx.respond_err(&req, msg.header.errnum);
                        }
                        ctx.publish(
                            Event::KvsSetroot.topic(),
                            Value::from_pairs([
                                (
                                    "fences_failed",
                                    Value::Array(vec![Value::from(name.as_str())]),
                                ),
                                ("errnum", Value::from(msg.header.errnum as i64)),
                            ]),
                        );
                    }
                    return;
                }
                // Transient failure (e.g. the shard master is blacked
                // out): mark the part unacknowledged; the heartbeat
                // re-sends it. The fence stays pending — never released
                // with a missing shard contribution.
                if let Some(join) = self.fence_joins.get_mut(&name) {
                    if let Some(ent) = join.outstanding.get_mut(&shard) {
                        ent.1 = None;
                    }
                }
                return;
            }
            let version = msg.payload.get("version").and_then(Value::as_uint).unwrap_or(0);
            let root_hex = msg
                .payload
                .get("root")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_default();
            if let Ok(root) = ObjectId::from_hex(&root_hex) {
                self.apply_root_shard(ctx, shard, version, root);
            }
            let done = match self.fence_joins.get_mut(&name) {
                Some(join) => {
                    join.outstanding.remove(&shard);
                    join.frontier.insert(shard, (version, root_hex));
                    join.outstanding.is_empty()
                }
                None => false,
            };
            if done {
                self.finish_fence_join(ctx, &name);
            }
        }
    }

    fn handle_event(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.header.topic.as_str() != Event::KvsSetroot.topic_str() {
            return;
        }
        // Fence failure (a shard master answered a fence push with the
        // permanent wrong-master EINVAL): fail local waiters with the
        // coordinator's code instead of leaving them parked forever.
        if let Some(failed) = msg.payload.get("fences_failed").and_then(Value::as_array) {
            let code = msg
                .payload
                .get("errnum")
                .and_then(Value::as_uint)
                .unwrap_or(u64::from(errnum::EINVAL)) as u32;
            for f in failed {
                let Some(name) = f.as_str() else { continue };
                if let Some(acc) = self.fences.remove(name) {
                    for req in acc.waiters {
                        ctx.respond_err(&req, code);
                    }
                }
            }
            return;
        }
        // Combined frontier event (cross-shard fence completion): adopt
        // every listed slot first, then release fence waiters with the
        // full frontier — waiters always read an applied cut.
        if let Some(entries) = msg.payload.get("shards").and_then(Value::as_array) {
            let entries = entries.to_vec();
            for e in &entries {
                let shard = e.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32;
                let version = e.get("version").and_then(Value::as_uint).unwrap_or(0);
                let root = e
                    .get("root")
                    .and_then(Value::as_str)
                    .and_then(|h| ObjectId::from_hex(h).ok());
                if let Some(root) = root {
                    self.apply_root_shard(ctx, shard, version, root);
                }
            }
            if let Some(fences) = msg.payload.get("fences").and_then(Value::as_array) {
                let reply = Value::from_pairs([
                    ("shards", Value::from(self.cfg.shards as i64)),
                    ("frontier", Value::Array(entries.clone())),
                ]);
                for f in fences {
                    let Some(name) = f.as_str() else { continue };
                    if let Some(acc) = self.fences.remove(name) {
                        for req in acc.waiters {
                            ctx.respond(&req, reply.clone());
                        }
                    }
                }
            }
            return;
        }
        let version = msg.payload.get("version").and_then(Value::as_uint).unwrap_or(0);
        let root = msg
            .payload
            .get("root")
            .and_then(Value::as_str)
            .and_then(|h| ObjectId::from_hex(h).ok());
        if let Some(root) = root {
            // Per-shard commit announcements carry a `shard` field;
            // legacy events apply to slot 0.
            let shard = msg.payload.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32;
            self.apply_root_shard(ctx, shard, version, root);
        }
        // Fence completion: answer local waiters.
        if let Some(fences) = msg.payload.get("fences").and_then(Value::as_array) {
            for f in fences {
                let Some(name) = f.as_str() else { continue };
                if let Some(acc) = self.fences.remove(name) {
                    for req in acc.waiters {
                        self.respond_version(ctx, &req);
                    }
                }
            }
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, epoch: u64) {
        self.cache.set_epoch(epoch);
        // Shard masters are authoritative for their slot's whole tree:
        // they never expire. Everyone else pins the current roots.
        let authoritative = if self.sharded() { self.master_shard.is_some() } else { self.master };
        if !authoritative {
            let pinned: Vec<ObjectId> = self.slots.iter().map(|s| s.root).collect();
            let expiry = ctx.config().kvs_expiry_epochs.max(self.cfg.expiry_epochs);
            self.cache.expire(expiry, &pinned);
        }
        if self.sharded() {
            // Retry transiently-failed loads (their waiters are still
            // parked) — deterministic order, they were queued in order.
            let retries = std::mem::take(&mut self.load_retries);
            for (id, shard) in retries {
                if self.load_waiters.contains_key(&id) {
                    self.request_load(ctx, id, shard);
                }
            }
            // Root coordinator: re-send unacknowledged fence parts, so a
            // fence pending across a shard-master blackout completes
            // once the master is back.
            if self.master && !self.fence_joins.is_empty() {
                let names: Vec<String> = self.fence_joins.keys().cloned().collect();
                for name in names {
                    self.send_fence_pushes(ctx, &name);
                }
            }
            // Likewise for pending sharded commits: a part lost to a
            // blacked-out master is re-issued until acknowledged.
            if self.master && !self.commit_joins.is_empty() {
                let ids: Vec<u64> = self.commit_joins.keys().copied().collect();
                for jid in ids {
                    self.retry_commit_pushes(ctx, jid);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, token: u64) {
        if self.batch_tokens.remove(&token) {
            self.flush_batch(ctx);
            return;
        }
        if let Some(name) = self.fence_tokens.remove(&token) {
            self.flush_fence(ctx, &name);
        }
    }
}
