//! Hierarchical key names.
//!
//! Keys look like `a.b.c`: dot-separated non-empty components, resolved
//! through directory objects exactly like the paper's worked example
//! (`a.b.c = 42`).
//!
//! Bounds exist for robustness, not taste: key length is capped so a
//! single entry cannot bloat its directory object (every entry rides in
//! every copy of the directory on the wire), and component depth is
//! capped because the master rebuilds one directory object per path
//! component on every commit touching the key — unbounded depth would
//! let one key turn each commit into an arbitrarily long hash-tree walk.

use flux_wire::errnum;
use std::fmt;

/// Maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 1024;

/// Maximum path components in a key (directory nesting depth).
pub const MAX_KEY_DEPTH: usize = 64;

/// Why a key was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// The key was empty.
    Empty,
    /// A component was empty (leading/trailing/double dots).
    EmptyComponent,
    /// Keys longer than [`MAX_KEY_LEN`] are rejected to bound directory
    /// entry sizes.
    TooLong(usize),
    /// Keys with more than [`MAX_KEY_DEPTH`] components are rejected to
    /// bound the per-commit hash-tree rebuild walk.
    TooDeep(usize),
}

impl KeyError {
    /// The wire error number a module reports for this rejection,
    /// aligned with the proto registry's declared error sets
    /// (`flux_proto::KvsMethod::declared_errors`).
    pub fn errnum(&self) -> u32 {
        match self {
            KeyError::Empty | KeyError::EmptyComponent => errnum::EINVAL,
            KeyError::TooLong(_) | KeyError::TooDeep(_) => errnum::ENAMETOOLONG,
        }
    }
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::Empty => write!(f, "key is empty"),
            KeyError::EmptyComponent => write!(f, "key has an empty component"),
            KeyError::TooLong(n) => write!(f, "key length {n} exceeds {MAX_KEY_LEN}"),
            KeyError::TooDeep(n) => write!(f, "key depth {n} exceeds {MAX_KEY_DEPTH}"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Validates a key.
pub fn validate_key(key: &str) -> Result<(), KeyError> {
    if key.is_empty() {
        return Err(KeyError::Empty);
    }
    if key.len() > MAX_KEY_LEN {
        return Err(KeyError::TooLong(key.len()));
    }
    let mut depth = 0usize;
    for component in key.split('.') {
        if component.is_empty() {
            return Err(KeyError::EmptyComponent);
        }
        depth += 1;
    }
    if depth > MAX_KEY_DEPTH {
        return Err(KeyError::TooDeep(depth));
    }
    Ok(())
}

/// Splits a validated key into its path components.
pub fn key_components(key: &str) -> Result<Vec<String>, KeyError> {
    validate_key(key)?;
    // flux-lint: allow(hotalloc) — walk state parks these components
    // across messages (multi-hop slave walks), so they must be owned;
    // master-side same-message resolution pays one short Vec per key.
    Ok(key.split('.').map(str::to_owned).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_keys() {
        assert_eq!(key_components("a").unwrap(), ["a"]);
        assert_eq!(key_components("a.b.c").unwrap(), ["a", "b", "c"]);
        assert_eq!(key_components("resource.rank.0").unwrap(), ["resource", "rank", "0"]);
    }

    #[test]
    fn invalid_keys() {
        assert_eq!(validate_key(""), Err(KeyError::Empty));
        assert_eq!(validate_key(".a"), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key("a."), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key("a..b"), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key("."), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key(".."), Err(KeyError::EmptyComponent));
        assert!(matches!(validate_key(&"x".repeat(2000)), Err(KeyError::TooLong(2000))));
    }

    #[test]
    fn boundary_lengths() {
        // Exactly at the cap is fine; one past is not.
        assert!(validate_key(&"x".repeat(MAX_KEY_LEN)).is_ok());
        assert!(matches!(
            validate_key(&"x".repeat(MAX_KEY_LEN + 1)),
            Err(KeyError::TooLong(_))
        ));
    }

    #[test]
    fn depth_is_bounded() {
        let deep_ok = vec!["a"; MAX_KEY_DEPTH].join(".");
        assert!(validate_key(&deep_ok).is_ok());
        let too_deep = vec!["a"; MAX_KEY_DEPTH + 1].join(".");
        assert_eq!(validate_key(&too_deep), Err(KeyError::TooDeep(MAX_KEY_DEPTH + 1)));
        // An oversized key made entirely of single-char components trips
        // the length cap first (length is the cheaper check).
        let huge = vec!["a"; 600].join(".");
        assert!(matches!(validate_key(&huge), Err(KeyError::TooLong(_))));
    }

    #[test]
    fn errnum_mapping_distinguishes_shape_from_size() {
        assert_eq!(KeyError::Empty.errnum(), errnum::EINVAL);
        assert_eq!(KeyError::EmptyComponent.errnum(), errnum::EINVAL);
        assert_eq!(KeyError::TooLong(9999).errnum(), errnum::ENAMETOOLONG);
        assert_eq!(KeyError::TooDeep(65).errnum(), errnum::ENAMETOOLONG);
    }

    #[test]
    fn error_display() {
        assert!(KeyError::Empty.to_string().contains("empty"));
        assert!(KeyError::TooLong(9).to_string().contains('9'));
        assert!(KeyError::TooDeep(70).to_string().contains("depth"));
    }
}
