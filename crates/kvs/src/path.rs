//! Hierarchical key names.
//!
//! Keys look like `a.b.c`: dot-separated non-empty components, resolved
//! through directory objects exactly like the paper's worked example
//! (`a.b.c = 42`).

use std::fmt;

/// Maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 1024;

/// Why a key was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// The key was empty.
    Empty,
    /// A component was empty (leading/trailing/double dots).
    EmptyComponent,
    /// Keys longer than [`MAX_KEY_LEN`] are rejected to bound directory
    /// entry sizes.
    TooLong(usize),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::Empty => write!(f, "key is empty"),
            KeyError::EmptyComponent => write!(f, "key has an empty component"),
            KeyError::TooLong(n) => write!(f, "key length {n} exceeds {MAX_KEY_LEN}"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Validates a key.
pub fn validate_key(key: &str) -> Result<(), KeyError> {
    if key.is_empty() {
        return Err(KeyError::Empty);
    }
    if key.len() > MAX_KEY_LEN {
        return Err(KeyError::TooLong(key.len()));
    }
    if key.split('.').any(str::is_empty) {
        return Err(KeyError::EmptyComponent);
    }
    Ok(())
}

/// Splits a validated key into its path components.
pub fn key_components(key: &str) -> Result<Vec<String>, KeyError> {
    validate_key(key)?;
    Ok(key.split('.').map(str::to_owned).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_keys() {
        assert_eq!(key_components("a").unwrap(), ["a"]);
        assert_eq!(key_components("a.b.c").unwrap(), ["a", "b", "c"]);
        assert_eq!(key_components("resource.rank.0").unwrap(), ["resource", "rank", "0"]);
    }

    #[test]
    fn invalid_keys() {
        assert_eq!(validate_key(""), Err(KeyError::Empty));
        assert_eq!(validate_key(".a"), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key("a."), Err(KeyError::EmptyComponent));
        assert_eq!(validate_key("a..b"), Err(KeyError::EmptyComponent));
        assert!(matches!(validate_key(&"x".repeat(2000)), Err(KeyError::TooLong(2000))));
    }

    #[test]
    fn error_display() {
        assert!(KeyError::Empty.to_string().contains("empty"));
        assert!(KeyError::TooLong(9).to_string().contains('9'));
    }
}
