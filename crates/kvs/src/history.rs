//! Per-client consistency checking for chaos-test histories.
//!
//! Chaos workloads (see `flux_rt::chaos`) drive scripted clients against a
//! faulty session and record what each client observed. This module turns
//! those observations into verdicts: an empty violation list means the
//! history is explainable by the KVS consistency model (read-your-writes
//! and monotonic reads per client, monotonically advancing versions).
//!
//! The checker is deliberately conservative about *uncertainty*: a commit
//! whose response was lost ([`Event::StagedOnly`]) may or may not have
//! reached the master, so later reads may legitimately observe it — or
//! not. Only outcomes that no interleaving of the recorded operations can
//! produce are reported as violations.

use std::collections::HashMap;

/// One observation in a client's history, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A commit acknowledged by the session: every generation of `key`
    /// up to and including `gen` written by this client is durable, and
    /// the store version was `version` when it applied.
    Committed {
        /// The key written.
        key: String,
        /// Highest generation of `key` covered by this commit.
        gen: u64,
        /// Store version reported by the commit response.
        version: u64,
    },
    /// A write whose commit outcome is unknown (the response was lost or
    /// the commit errored): generation `gen` of `key` may or may not be
    /// visible to later reads.
    StagedOnly {
        /// The key written.
        key: String,
        /// Generation whose durability is unknown.
        gen: u64,
    },
    /// A read of `key` observing generation `gen` (`None` = key absent).
    Read {
        /// The key read.
        key: String,
        /// Observed generation, or `None` if the key was absent.
        gen: Option<u64>,
    },
    /// An observation of the store version (e.g. `kvs.version`).
    Version {
        /// The observed version.
        v: u64,
    },
}

/// Everything one scripted client observed, in program order.
#[derive(Clone, Debug)]
pub struct ClientHistory {
    /// A label for error messages (e.g. `"rank3/client0"`).
    pub client: String,
    /// Observations in program order.
    pub events: Vec<Event>,
}

/// Checks a set of per-client histories for consistency violations.
///
/// Returns human-readable violation descriptions; an empty vector means
/// the histories are consistent. Checked properties:
///
/// 1. **Writes exist**: a read observing generation `g` of a key is only
///    legal if some client wrote generation `g` (committed *or* staged —
///    a lost commit response does not mean a lost commit).
/// 2. **Read-your-writes**: after a client's commit of `gen` is
///    acknowledged, that client's later reads of the key must observe
///    `gen` or newer, and never `None`.
/// 3. **Monotonic reads**: per (client, key), observed generations never
///    go backwards, and a key never vanishes after being observed.
/// 4. **Monotonic versions**: per client, the sequence of observed store
///    versions (commit responses and explicit version probes) never
///    decreases.
pub fn check(histories: &[ClientHistory]) -> Vec<String> {
    let mut violations = Vec::new();

    // Pass 1: the global set of generations ever written, per key. Using
    // the whole history (rather than a causal cut) can only under-report,
    // never false-positive.
    let mut max_written: HashMap<&str, u64> = HashMap::new();
    for h in histories {
        for ev in &h.events {
            if let Event::Committed { key, gen, .. } | Event::StagedOnly { key, gen } = ev {
                let e = max_written.entry(key.as_str()).or_insert(0);
                *e = (*e).max(*gen);
            }
        }
    }

    // Pass 2: per-client program-order checks.
    for h in histories {
        // key → highest acknowledged-committed gen by this client.
        let mut floor: HashMap<&str, u64> = HashMap::new();
        // key → last gen this client observed via a read.
        let mut last_read: HashMap<&str, u64> = HashMap::new();
        let mut last_version: u64 = 0;
        for (i, ev) in h.events.iter().enumerate() {
            match ev {
                Event::Committed { key, gen, version } => {
                    if *version < last_version {
                        violations.push(format!(
                            "{}@{i}: commit of {key}#{gen} returned version {version} \
                             after having observed version {last_version}",
                            h.client
                        ));
                    }
                    last_version = last_version.max(*version);
                    let e = floor.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                }
                Event::StagedOnly { .. } => {}
                Event::Version { v } => {
                    if *v < last_version {
                        violations.push(format!(
                            "{}@{i}: observed version {v} after version {last_version}",
                            h.client
                        ));
                    }
                    last_version = last_version.max(*v);
                }
                Event::Read { key, gen } => {
                    let floor_gen = floor.get(key.as_str()).copied().unwrap_or(0);
                    let prev_read = last_read.get(key.as_str()).copied();
                    match gen {
                        Some(g) => {
                            let written = max_written.get(key.as_str()).copied().unwrap_or(0);
                            if *g > written {
                                violations.push(format!(
                                    "{}@{i}: read {key}#{g} but no client ever wrote \
                                     past generation {written}",
                                    h.client
                                ));
                            }
                            if *g < floor_gen {
                                violations.push(format!(
                                    "{}@{i}: read-your-writes violation: read {key}#{g} \
                                     after own commit of #{floor_gen} was acknowledged",
                                    h.client
                                ));
                            }
                            if let Some(prev) = prev_read {
                                if *g < prev {
                                    violations.push(format!(
                                        "{}@{i}: monotonic-reads violation: read {key}#{g} \
                                         after having read #{prev}",
                                        h.client
                                    ));
                                }
                            }
                            let e = last_read.entry(key.as_str()).or_insert(0);
                            *e = (*e).max(*g);
                        }
                        None => {
                            if floor_gen > 0 {
                                violations.push(format!(
                                    "{}@{i}: read-your-writes violation: {key} absent \
                                     after own commit of #{floor_gen} was acknowledged",
                                    h.client
                                ));
                            }
                            if let Some(prev) = prev_read {
                                violations.push(format!(
                                    "{}@{i}: monotonic-reads violation: {key} absent \
                                     after having read #{prev}",
                                    h.client
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(events: Vec<Event>) -> ClientHistory {
        ClientHistory { client: "c0".into(), events }
    }

    #[test]
    fn clean_history_passes() {
        let h = hist(vec![
            Event::Read { key: "k".into(), gen: None },
            Event::Committed { key: "k".into(), gen: 1, version: 5 },
            Event::Read { key: "k".into(), gen: Some(1) },
            Event::Committed { key: "k".into(), gen: 2, version: 7 },
            Event::Version { v: 7 },
            Event::Read { key: "k".into(), gen: Some(2) },
        ]);
        assert!(check(&[h]).is_empty());
    }

    #[test]
    fn staged_only_reads_are_tolerated_either_way() {
        // A lost commit response: the read may see the write or not.
        let saw = hist(vec![
            Event::StagedOnly { key: "k".into(), gen: 1 },
            Event::Read { key: "k".into(), gen: Some(1) },
        ]);
        let missed = hist(vec![
            Event::StagedOnly { key: "k".into(), gen: 1 },
            Event::Read { key: "k".into(), gen: None },
        ]);
        assert!(check(&[saw]).is_empty());
        assert!(check(&[missed]).is_empty());
    }

    #[test]
    fn read_your_writes_violation_detected() {
        let stale = hist(vec![
            Event::Committed { key: "k".into(), gen: 2, version: 3 },
            Event::Read { key: "k".into(), gen: Some(1) },
        ]);
        let v = check(&[stale]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("read-your-writes"), "{v:?}");

        let absent = hist(vec![
            Event::Committed { key: "k".into(), gen: 1, version: 3 },
            Event::Read { key: "k".into(), gen: None },
        ]);
        assert!(!check(&[absent]).is_empty());
    }

    #[test]
    fn monotonic_reads_violation_detected() {
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![
                Event::Committed { key: "k".into(), gen: 1, version: 1 },
                Event::Committed { key: "k".into(), gen: 2, version: 2 },
            ],
        };
        let reader = ClientHistory {
            client: "r".into(),
            events: vec![
                Event::Read { key: "k".into(), gen: Some(2) },
                Event::Read { key: "k".into(), gen: Some(1) },
            ],
        };
        let v = check(&[writer, reader]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("monotonic-reads"), "{v:?}");
    }

    #[test]
    fn phantom_read_detected() {
        let h = hist(vec![Event::Read { key: "ghost".into(), gen: Some(3) }]);
        let v = check(&[h]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("ever wrote"), "{v:?}");
    }

    #[test]
    fn version_regression_detected() {
        let h = hist(vec![Event::Version { v: 9 }, Event::Version { v: 4 }]);
        let v = check(&[h]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("version 4 after version 9"), "{v:?}");
    }

    #[test]
    fn cross_client_reads_validated_against_all_writers() {
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![Event::StagedOnly { key: "w.k".into(), gen: 3 }],
        };
        let reader = ClientHistory {
            client: "r".into(),
            events: vec![Event::Read { key: "w.k".into(), gen: Some(3) }],
        };
        assert!(check(&[writer, reader]).is_empty());
    }
}
