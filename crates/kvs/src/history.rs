//! Per-client consistency checking for chaos-test histories.
//!
//! Chaos workloads (see `flux_rt::chaos`) drive scripted clients against a
//! faulty session and record what each client observed. This module turns
//! those observations into verdicts: an empty violation list means the
//! history is explainable by the KVS consistency model (read-your-writes
//! and monotonic reads per client, monotonically advancing versions).
//!
//! The checker is deliberately conservative about *uncertainty*: a commit
//! whose response was lost ([`Event::StagedOnly`]) may or may not have
//! reached the master, so later reads may legitimately observe it — or
//! not. Only outcomes that no interleaving of the recorded operations can
//! produce are reported as violations.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One observation in a client's history, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A commit acknowledged by the session: every generation of `key`
    /// up to and including `gen` written by this client is durable, and
    /// the store version was `version` when it applied.
    Committed {
        /// The key written.
        key: String,
        /// Highest generation of `key` covered by this commit.
        gen: u64,
        /// Store version reported by the commit response.
        version: u64,
    },
    /// A write whose commit outcome is unknown (the response was lost or
    /// the commit errored): generation `gen` of `key` may or may not be
    /// visible to later reads.
    StagedOnly {
        /// The key written.
        key: String,
        /// Generation whose durability is unknown.
        gen: u64,
    },
    /// A read of `key` observing generation `gen` (`None` = key absent).
    Read {
        /// The key read.
        key: String,
        /// Observed generation, or `None` if the key was absent.
        gen: Option<u64>,
    },
    /// An observation of the store version (e.g. `kvs.version`).
    Version {
        /// The observed version.
        v: u64,
    },
    /// A commit acknowledged by a sharded session: every generation of
    /// `key` up to and including `gen` written by this client is durable
    /// on `shard`, whose version was `version` when it applied. The
    /// unsharded [`Event::Committed`] is exactly this with `shard == 0`.
    CommittedSharded {
        /// The key written.
        key: String,
        /// Highest generation of `key` covered by this commit.
        gen: u64,
        /// Shard owning `key`.
        shard: u32,
        /// That shard's version reported by the commit frontier.
        version: u64,
    },
    /// An observation of one shard's version stream (e.g. a sharded
    /// `kvs.get_version` probe).
    ShardVersion {
        /// The shard observed.
        shard: u32,
        /// The observed version.
        v: u64,
    },
    /// A contribution to the collective fence `name` whose release was
    /// acknowledged: generation `gen` of `key` (owned by `shard`) is
    /// durable. A contribution whose fence outcome is unknown must be
    /// recorded as [`Event::StagedOnly`] instead.
    Fenced {
        /// The fence name.
        name: String,
        /// The key contributed.
        key: String,
        /// Highest generation of `key` covered by the contribution.
        gen: u64,
        /// Shard owning `key`.
        shard: u32,
    },
    /// The release of fence `name`, carrying the per-shard version
    /// frontier reported by the release. All clients observing the same
    /// fence must observe the same frontier, and the frontier must cover
    /// every shard that received a contribution.
    FenceDone {
        /// The fence name.
        name: String,
        /// `(shard, version)` pairs from the release, any order.
        frontier: Vec<(u32, u64)>,
    },
}

/// Everything one scripted client observed, in program order.
#[derive(Clone, Debug)]
pub struct ClientHistory {
    /// A label for error messages (e.g. `"rank3/client0"`).
    pub client: String,
    /// Observations in program order.
    pub events: Vec<Event>,
}

/// Checks a set of per-client histories for consistency violations.
///
/// Returns human-readable violation descriptions; an empty vector means
/// the histories are consistent. Checked properties:
///
/// 1. **Writes exist**: a read observing generation `g` of a key is only
///    legal if some client wrote generation `g` (committed *or* staged —
///    a lost commit response does not mean a lost commit).
/// 2. **Read-your-writes**: after a client's commit of `gen` is
///    acknowledged, that client's later reads of the key must observe
///    `gen` or newer, and never `None`.
/// 3. **Monotonic reads**: per (client, key), observed generations never
///    go backwards, and a key never vanishes after being observed.
/// 4. **Monotonic versions**: per client and per shard, the sequence of
///    observed versions (commit responses, frontiers, and explicit
///    version probes) never decreases. Unsharded events count against
///    shard 0.
/// 5. **Fence frontier agreement**: every client observing the release
///    of a given fence observes the *same* per-shard version frontier.
/// 6. **No partial fence release**: a fence's release frontier covers
///    every shard that received a contribution, and after a client
///    observes the release its reads of fenced keys must observe the
///    fenced generations (or newer) — a fence never releases with a
///    missing shard contribution.
pub fn check(histories: &[ClientHistory]) -> Vec<String> {
    let mut violations = Vec::new();

    // Pass 1: the global set of generations ever written, per key. Using
    // the whole history (rather than a causal cut) can only under-report,
    // never false-positive. Also collects, per fence: the contributed
    // generations, the shards contributed to, and the release frontier
    // (checked for agreement across clients).
    let mut max_written: HashMap<&str, u64> = HashMap::new();
    let mut fence_keys: HashMap<&str, HashMap<&str, u64>> = HashMap::new();
    let mut fence_shards: HashMap<&str, BTreeSet<u32>> = HashMap::new();
    let mut fence_frontiers: HashMap<&str, BTreeMap<u32, u64>> = HashMap::new();
    for h in histories {
        for ev in &h.events {
            match ev {
                Event::Committed { key, gen, .. }
                | Event::CommittedSharded { key, gen, .. }
                | Event::StagedOnly { key, gen } => {
                    let e = max_written.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                }
                Event::Fenced { name, key, gen, shard } => {
                    let e = max_written.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                    let fk = fence_keys.entry(name.as_str()).or_default();
                    let e = fk.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                    fence_shards.entry(name.as_str()).or_default().insert(*shard);
                }
                Event::FenceDone { name, frontier } => {
                    let sorted: BTreeMap<u32, u64> = frontier.iter().copied().collect();
                    match fence_frontiers.get(name.as_str()) {
                        None => {
                            fence_frontiers.insert(name.as_str(), sorted);
                        }
                        Some(prev) if *prev != sorted => {
                            violations.push(format!(
                                "{}: fence {name} released with frontier {sorted:?} \
                                 but another client observed {prev:?}",
                                h.client
                            ));
                        }
                        Some(_) => {}
                    }
                }
                _ => {}
            }
        }
    }
    // Oracle 6a: the release frontier covers every contributed shard.
    for (name, shards) in &fence_shards {
        if let Some(frontier) = fence_frontiers.get(name) {
            for s in shards {
                if !frontier.contains_key(s) {
                    violations.push(format!(
                        "fence {name} released with no entry for shard {s} \
                         despite a contribution to it"
                    ));
                }
            }
        }
    }

    // Pass 2: per-client program-order checks.
    for h in histories {
        // key → highest acknowledged-committed gen by this client.
        let mut floor: HashMap<&str, u64> = HashMap::new();
        // key → gen this client must observe after a fence it saw release.
        let mut fence_floor: HashMap<&str, u64> = HashMap::new();
        // key → last gen this client observed via a read.
        let mut last_read: HashMap<&str, u64> = HashMap::new();
        // shard → highest version this client observed on that shard's
        // stream. Unsharded events count against shard 0.
        let mut shard_versions: HashMap<u32, u64> = HashMap::new();
        let mut bump_version =
            |shard: u32, v: u64, what: &str, i: usize, violations: &mut Vec<String>| {
                let e = shard_versions.entry(shard).or_insert(0);
                if v < *e {
                    violations.push(format!(
                        "{}@{i}: {what} observed shard {shard} at version {v} \
                         after version {}",
                        h.client, *e
                    ));
                }
                *e = (*e).max(v);
            };
        for (i, ev) in h.events.iter().enumerate() {
            match ev {
                Event::Committed { key, gen, version } => {
                    bump_version(0, *version, &format!("commit of {key}#{gen}"), i, &mut violations);
                    let e = floor.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                }
                Event::CommittedSharded { key, gen, shard, version } => {
                    bump_version(
                        *shard,
                        *version,
                        &format!("commit of {key}#{gen}"),
                        i,
                        &mut violations,
                    );
                    let e = floor.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                }
                Event::StagedOnly { .. } => {}
                Event::Version { v } => {
                    bump_version(0, *v, "version probe", i, &mut violations);
                }
                Event::ShardVersion { shard, v } => {
                    bump_version(*shard, *v, "version probe", i, &mut violations);
                }
                Event::Fenced { key, gen, .. } => {
                    let e = floor.entry(key.as_str()).or_insert(0);
                    *e = (*e).max(*gen);
                }
                Event::FenceDone { name, frontier } => {
                    for (shard, v) in frontier {
                        bump_version(
                            *shard,
                            *v,
                            &format!("fence {name} frontier"),
                            i,
                            &mut violations,
                        );
                    }
                    // Oracle 6b: from here on this client must observe
                    // every contribution the fence gathered, whoever
                    // wrote it.
                    if let Some(fk) = fence_keys.get(name.as_str()) {
                        for (key, gen) in fk {
                            let e = fence_floor.entry(key).or_insert(0);
                            *e = (*e).max(*gen);
                        }
                    }
                }
                Event::Read { key, gen } => {
                    let floor_gen = floor.get(key.as_str()).copied().unwrap_or(0);
                    let fence_gen = fence_floor.get(key.as_str()).copied().unwrap_or(0);
                    let prev_read = last_read.get(key.as_str()).copied();
                    match gen {
                        Some(g) => {
                            let written = max_written.get(key.as_str()).copied().unwrap_or(0);
                            if *g > written {
                                violations.push(format!(
                                    "{}@{i}: read {key}#{g} but no client ever wrote \
                                     past generation {written}",
                                    h.client
                                ));
                            }
                            if *g < floor_gen {
                                violations.push(format!(
                                    "{}@{i}: read-your-writes violation: read {key}#{g} \
                                     after own commit of #{floor_gen} was acknowledged",
                                    h.client
                                ));
                            }
                            if *g < fence_gen {
                                violations.push(format!(
                                    "{}@{i}: fence violation: read {key}#{g} after a \
                                     fence covering #{fence_gen} released",
                                    h.client
                                ));
                            }
                            if let Some(prev) = prev_read {
                                if *g < prev {
                                    violations.push(format!(
                                        "{}@{i}: monotonic-reads violation: read {key}#{g} \
                                         after having read #{prev}",
                                        h.client
                                    ));
                                }
                            }
                            let e = last_read.entry(key.as_str()).or_insert(0);
                            *e = (*e).max(*g);
                        }
                        None => {
                            if floor_gen > 0 {
                                violations.push(format!(
                                    "{}@{i}: read-your-writes violation: {key} absent \
                                     after own commit of #{floor_gen} was acknowledged",
                                    h.client
                                ));
                            }
                            if fence_gen > 0 {
                                violations.push(format!(
                                    "{}@{i}: fence violation: {key} absent after a \
                                     fence covering #{fence_gen} released",
                                    h.client
                                ));
                            }
                            if let Some(prev) = prev_read {
                                violations.push(format!(
                                    "{}@{i}: monotonic-reads violation: {key} absent \
                                     after having read #{prev}",
                                    h.client
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(events: Vec<Event>) -> ClientHistory {
        ClientHistory { client: "c0".into(), events }
    }

    #[test]
    fn clean_history_passes() {
        let h = hist(vec![
            Event::Read { key: "k".into(), gen: None },
            Event::Committed { key: "k".into(), gen: 1, version: 5 },
            Event::Read { key: "k".into(), gen: Some(1) },
            Event::Committed { key: "k".into(), gen: 2, version: 7 },
            Event::Version { v: 7 },
            Event::Read { key: "k".into(), gen: Some(2) },
        ]);
        assert!(check(&[h]).is_empty());
    }

    #[test]
    fn staged_only_reads_are_tolerated_either_way() {
        // A lost commit response: the read may see the write or not.
        let saw = hist(vec![
            Event::StagedOnly { key: "k".into(), gen: 1 },
            Event::Read { key: "k".into(), gen: Some(1) },
        ]);
        let missed = hist(vec![
            Event::StagedOnly { key: "k".into(), gen: 1 },
            Event::Read { key: "k".into(), gen: None },
        ]);
        assert!(check(&[saw]).is_empty());
        assert!(check(&[missed]).is_empty());
    }

    #[test]
    fn read_your_writes_violation_detected() {
        let stale = hist(vec![
            Event::Committed { key: "k".into(), gen: 2, version: 3 },
            Event::Read { key: "k".into(), gen: Some(1) },
        ]);
        let v = check(&[stale]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("read-your-writes"), "{v:?}");

        let absent = hist(vec![
            Event::Committed { key: "k".into(), gen: 1, version: 3 },
            Event::Read { key: "k".into(), gen: None },
        ]);
        assert!(!check(&[absent]).is_empty());
    }

    #[test]
    fn monotonic_reads_violation_detected() {
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![
                Event::Committed { key: "k".into(), gen: 1, version: 1 },
                Event::Committed { key: "k".into(), gen: 2, version: 2 },
            ],
        };
        let reader = ClientHistory {
            client: "r".into(),
            events: vec![
                Event::Read { key: "k".into(), gen: Some(2) },
                Event::Read { key: "k".into(), gen: Some(1) },
            ],
        };
        let v = check(&[writer, reader]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("monotonic-reads"), "{v:?}");
    }

    #[test]
    fn phantom_read_detected() {
        let h = hist(vec![Event::Read { key: "ghost".into(), gen: Some(3) }]);
        let v = check(&[h]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("ever wrote"), "{v:?}");
    }

    #[test]
    fn version_regression_detected() {
        let h = hist(vec![Event::Version { v: 9 }, Event::Version { v: 4 }]);
        let v = check(&[h]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("version 4 after version 9"), "{v:?}");
    }

    #[test]
    fn sharded_versions_are_independent_streams() {
        // Shard 1 at version 9 then shard 0 at version 2 is fine —
        // streams are per shard. Shard 1 regressing is not.
        let ok = hist(vec![
            Event::ShardVersion { shard: 1, v: 9 },
            Event::ShardVersion { shard: 0, v: 2 },
            Event::CommittedSharded { key: "k".into(), gen: 1, shard: 0, version: 3 },
        ]);
        assert!(check(&[ok]).is_empty());

        let bad = hist(vec![
            Event::ShardVersion { shard: 1, v: 9 },
            Event::ShardVersion { shard: 1, v: 4 },
        ]);
        let v = check(&[bad]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("shard 1 at version 4"), "{v:?}");
    }

    #[test]
    fn sharded_commit_gives_read_your_writes() {
        let stale = hist(vec![
            Event::CommittedSharded { key: "k".into(), gen: 2, shard: 3, version: 1 },
            Event::Read { key: "k".into(), gen: Some(1) },
        ]);
        let v = check(&[stale]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("read-your-writes"), "{v:?}");
    }

    #[test]
    fn fence_frontier_disagreement_detected() {
        let a = ClientHistory {
            client: "a".into(),
            events: vec![Event::FenceDone { name: "f".into(), frontier: vec![(0, 3), (1, 5)] }],
        };
        let b = ClientHistory {
            client: "b".into(),
            events: vec![Event::FenceDone { name: "f".into(), frontier: vec![(1, 5), (0, 3)] }],
        };
        // Same frontier, different order: consistent.
        assert!(check(&[a.clone(), b]).is_empty());

        let c = ClientHistory {
            client: "c".into(),
            events: vec![Event::FenceDone { name: "f".into(), frontier: vec![(0, 3), (1, 6)] }],
        };
        let v = check(&[a, c]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("frontier"), "{v:?}");
    }

    #[test]
    fn fence_release_missing_shard_contribution_detected() {
        // A client contributed to shard 2 but the release frontier only
        // covers shards 0 and 1: a partial release.
        let h = hist(vec![
            Event::Fenced { name: "f".into(), key: "k".into(), gen: 1, shard: 2 },
            Event::FenceDone { name: "f".into(), frontier: vec![(0, 1), (1, 1)] },
        ]);
        let v = check(&[h]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no entry for shard 2"), "{v:?}");
    }

    #[test]
    fn reads_after_fence_release_must_observe_contributions() {
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![
                Event::Fenced { name: "f".into(), key: "w.k".into(), gen: 2, shard: 1 },
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
            ],
        };
        let reader_ok = ClientHistory {
            client: "r0".into(),
            events: vec![
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
                Event::Read { key: "w.k".into(), gen: Some(2) },
            ],
        };
        assert!(check(&[writer.clone(), reader_ok]).is_empty());

        let reader_stale = ClientHistory {
            client: "r1".into(),
            events: vec![
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
                Event::Read { key: "w.k".into(), gen: Some(1) },
            ],
        };
        let v = check(&[writer.clone(), reader_stale]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("fence violation"), "{v:?}");

        let reader_absent = ClientHistory {
            client: "r2".into(),
            events: vec![
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
                Event::Read { key: "w.k".into(), gen: None },
            ],
        };
        assert!(!check(&[writer, reader_absent]).is_empty());
    }

    #[test]
    fn reads_before_fence_release_are_unconstrained() {
        // The same stale read is fine if it happens before this client
        // observes the release.
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![
                Event::Fenced { name: "f".into(), key: "w.k".into(), gen: 2, shard: 1 },
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
            ],
        };
        let reader = ClientHistory {
            client: "r".into(),
            events: vec![
                Event::Read { key: "w.k".into(), gen: None },
                Event::Read { key: "w.k".into(), gen: Some(1) },
                Event::FenceDone { name: "f".into(), frontier: vec![(1, 4)] },
                Event::Read { key: "w.k".into(), gen: Some(2) },
            ],
        };
        assert!(check(&[writer, reader]).is_empty());
    }

    #[test]
    fn cross_client_reads_validated_against_all_writers() {
        let writer = ClientHistory {
            client: "w".into(),
            events: vec![Event::StagedOnly { key: "w.k".into(), gen: 3 }],
        };
        let reader = ClientHistory {
            client: "r".into(),
            events: vec![Event::Read { key: "w.k".into(), gen: Some(3) }],
        };
        assert!(check(&[writer, reader]).is_empty());
    }
}
