//! Property tests over the hash-tree commit machinery.

use crate::master::{apply_tuples, resolve, Tuple};
use crate::object::KvsObject;
use crate::store::ObjectCache;
use flux_value::Value;
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_key() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-c]{1,2}", 1..4).prop_map(|v| v.join("."))
}

fn arb_ops() -> impl Strategy<Value = Vec<(String, Option<i64>)>> {
    prop::collection::vec((arb_key(), prop::option::of(any::<i64>())), 0..24)
}

/// A straightforward model: a flat map from key to value, where writing a
/// key shadows any keys strictly below or above it in the hierarchy
/// (writing `a.b` destroys `a.b.c`; writing `a.b.c` turns `a.b` into a
/// directory).
fn model_apply(model: &mut HashMap<String, i64>, key: &str, val: Option<i64>) {
    // Remove every key at, under, or on the path to `key`.
    let prefix = format!("{key}.");
    model.retain(|k, _| {
        let under = k.starts_with(&prefix);
        let above = key.starts_with(&format!("{k}.")); // k is an ancestor of key
        !(under || above || k == key)
    });
    if let Some(v) = val {
        model.insert(key.to_owned(), v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The hash tree agrees with a flat-map model across arbitrary
    /// sequences of single-key commits (with hierarchy shadowing).
    #[test]
    fn tree_matches_model(ops in arb_ops()) {
        let mut cache = ObjectCache::new();
        let mut root = cache.insert(KvsObject::empty_dir());
        let mut model: HashMap<String, i64> = HashMap::new();
        for (key, val) in &ops {
            let tuple: Tuple = match val {
                Some(v) => {
                    let id = cache.insert(KvsObject::Val(Value::Int(*v)));
                    (key.clone(), Some(id))
                }
                None => (key.clone(), None),
            };
            root = apply_tuples(&mut cache, root, &[tuple]);
            model_apply(&mut model, key, *val);
        }
        // Every model key resolves to the model value.
        for (key, v) in &model {
            let id = resolve(&mut cache, root, key);
            prop_assert!(id.is_some(), "key {} missing", key);
            let obj = cache.get(id.unwrap()).unwrap();
            match &*obj {
                KvsObject::Val(val) => prop_assert_eq!(val, &Value::Int(*v)),
                KvsObject::Dir(_) => prop_assert!(false, "key {} became a dir", key),
            }
        }
        // Model-absent keys must not resolve to values.
        for (key, _) in &ops {
            if !model.contains_key(key) {
                if let Some(id) = resolve(&mut cache, root, key) {
                    let obj = cache.get(id).unwrap();
                    prop_assert!(obj.is_dir(), "deleted key {} still a value", key);
                }
            }
        }
    }

    /// Batch commit equals the same tuples applied one at a time.
    #[test]
    fn batch_equals_sequential(ops in arb_ops()) {
        let run = |batched: bool| {
            let mut cache = ObjectCache::new();
            let mut root = cache.insert(KvsObject::empty_dir());
            let tuples: Vec<Tuple> = ops
                .iter()
                .map(|(k, v)| match v {
                    Some(v) => {
                        let id = cache.insert(KvsObject::Val(Value::Int(*v)));
                        (k.clone(), Some(id))
                    }
                    None => (k.clone(), None),
                })
                .collect();
            if batched {
                root = apply_tuples(&mut cache, root, &tuples);
            } else {
                for t in tuples {
                    root = apply_tuples(&mut cache, root, &[t]);
                }
            }
            root
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// Old roots remain readable after any sequence of updates (snapshot
    /// isolation of the content-addressed tree).
    #[test]
    fn snapshots_stay_intact(ops in arb_ops()) {
        prop_assume!(!ops.is_empty());
        let mut cache = ObjectCache::new();
        let root0 = cache.insert(KvsObject::empty_dir());
        let marker = cache.insert(KvsObject::Val(Value::from("snapshot")));
        let root1 = apply_tuples(&mut cache, root0, &[("snap.key".to_owned(), Some(marker))]);
        let mut root = root1;
        for (key, val) in &ops {
            let tuple: Tuple = match val {
                Some(v) => {
                    let id = cache.insert(KvsObject::Val(Value::Int(*v)));
                    (key.clone(), Some(id))
                }
                None => (key.clone(), None),
            };
            root = apply_tuples(&mut cache, root, &[tuple]);
        }
        // The old snapshot still resolves.
        let id = resolve(&mut cache, root1, "snap.key").expect("snapshot intact");
        prop_assert_eq!(&*cache.get(id).unwrap(), &KvsObject::Val(Value::from("snapshot")));
    }
}
