//! # flux-kvs
//!
//! The Flux distributed key-value store (paper §IV-B).
//!
//! JSON values live in a content-addressable object store, hashed by the
//! SHA1 of their canonical encoding — the hash-tree design borrowed from
//! ZFS and git. Hierarchical key names (`a.b.c`) resolve through
//! directory objects; every update produces a new root reference, which
//! the **master** (the KVS module instance on rank 0) publishes as a
//! versioned `kvs.setroot` event. **Slave** instances on every other
//! broker cache objects, switch roots in version order, and fault missing
//! objects from their tree parent, recursively up to the master.
//!
//! The store provides exactly the paper's weak-consistency contract
//! (Vogels' taxonomy):
//!
//! * **causal consistency** — `kvs.get_version` / `kvs.wait_version`
//!   let process B wait for the store version process A told it about;
//! * **read-your-writes** — a commit response carries the new root
//!   reference, applied at the caller's broker before the caller is
//!   answered;
//! * **monotonic reads** — root references are versioned and never
//!   applied out of order.
//!
//! ## API (client-side, see [`client::KvsClient`])
//!
//! `put` (asynchronous write-back), `commit` (synchronous flush +
//! root switch), `fence` (collective commit: contributions are merged
//! upstream through the tree — duplicate value objects deduplicate at
//! every hop while `(key, SHA1)` tuples concatenate, reproducing the
//! paper's Fig. 3 redundancy behaviour), `get` (recursive lookup with
//! fault-in through the slave-cache chain — whole objects only, which is
//! the Fig. 4 single-directory effect), `get_version`, `wait_version`,
//! `watch`, `unlink`, and `dir`.


#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod client;
pub mod history;
mod master;
mod module;
mod object;
mod path;
pub mod shard;
mod store;

pub use master::{apply_tuples, resolve};
pub use module::{KvsConfig, KvsModule};
pub use object::{KvsObject, ObjectError};
pub use path::{key_components, validate_key, KeyError, MAX_KEY_DEPTH, MAX_KEY_LEN};
pub use store::{CacheStats, ObjectCache};

#[cfg(test)]
mod proptests;
