//! Namespace sharding: key → shard → master rank.
//!
//! With `shards = N > 1` the KVS namespace is split across N
//! independent masters (ranks `0..N`, one hash-tree root, version
//! stream, and commit-batching window each). The split is by key hash:
//! the SHA1 of the **validated canonical path** decides the shard, so
//! routing is stable under any client-side spelling that validation
//! would reject anyway (`a..b` never hashes differently from `a.b` —
//! it never hashes at all).
//!
//! Everything here is pure: the module and clients share one function
//! so a commit's partitioning and a reader's routing can never
//! disagree.

use crate::path::{key_components, KeyError};
use flux_hash::ObjectId;
use flux_wire::Rank;

/// Computes the shard owning `key` among `shards` shards.
///
/// The key is validated first (`EINVAL`/`ENAMETOOLONG` shapes are
/// rejected, not hashed) and then canonicalized — components re-joined
/// with `'.'` — before hashing, so only canonical spellings ever reach
/// the hash. The first four digest bytes, read big-endian, are reduced
/// modulo `shards`.
pub fn shard_of_key(key: &str, shards: u32) -> Result<u32, KeyError> {
    let components = key_components(key)?;
    if shards <= 1 {
        return Ok(0);
    }
    let canonical = components.join(".");
    let digest = ObjectId::hash(canonical.as_bytes()).0;
    let h = u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]);
    Ok(h % shards)
}

/// The rank mastering `shard`: shard *s* lives on rank *s*. Sessions
/// must therefore be at least `shards` brokers wide.
pub fn master_of(shard: u32) -> Rank {
    Rank(shard)
}

/// Splits a tuple batch by shard, preserving per-shard arrival order
/// (the per-shard applications then equal applying the original batch
/// sequentially, shard by shard). Tuples whose key fails validation
/// land on shard 0 — the shard-0 master's own `apply_tuples` treats
/// them as ordinary (unresolvable) keys, exactly like the unsharded
/// path would.
pub fn partition_tuples(
    tuples: Vec<(String, Option<ObjectId>)>,
    shards: u32,
) -> Vec<Vec<(String, Option<ObjectId>)>> {
    let mut parts: Vec<Vec<(String, Option<ObjectId>)>> =
        (0..shards.max(1)).map(|_| Vec::new()).collect();
    for (key, id) in tuples {
        let s = shard_of_key(&key, shards).unwrap_or(0);
        parts[s as usize].push((key, id));
    }
    parts
}

/// Picks a key of the form `{prefix}{i}` landing on `shard` (for tests
/// and scenario builders that need keys with a known placement).
pub fn key_on_shard(prefix: &str, shard: u32, shards: u32) -> String {
    for i in 0..10_000u32 {
        let k = format!("{prefix}{i}");
        if shard_of_key(&k, shards) == Ok(shard) {
            return k;
        }
    }
    // flux-lint: allow(panic) — test/scenario helper; 10k draws missing
    // a shard of a uniform hash means the hash itself is broken.
    panic!("no key with prefix {prefix} lands on shard {shard}/{shards}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::MAX_KEY_LEN;

    #[test]
    fn single_shard_is_always_zero() {
        assert_eq!(shard_of_key("a.b.c", 1), Ok(0));
        assert_eq!(shard_of_key("anything", 0), Ok(0));
    }

    #[test]
    fn sharding_is_deterministic_and_in_range() {
        for shards in [2u32, 3, 4, 8] {
            for i in 0..64 {
                let key = format!("bench.k{i}");
                let s = shard_of_key(&key, shards).unwrap();
                assert!(s < shards);
                assert_eq!(shard_of_key(&key, shards), Ok(s));
            }
        }
    }

    #[test]
    fn all_shards_are_reachable() {
        // A uniform hash over a few dozen keys must hit every shard.
        for shards in [2u32, 4, 8] {
            let mut hit = vec![false; shards as usize];
            for i in 0..256 {
                let s = shard_of_key(&format!("spread.k{i}"), shards).unwrap();
                hit[s as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "shards {shards}: {hit:?}");
        }
    }

    #[test]
    fn invalid_keys_are_rejected_not_hashed() {
        // The normalization fix: `a.b` hashes, a rejected spelling like
        // `a..b` must never reach the hash and land somewhere else — it
        // is refused with the same errnum the write path reports.
        assert!(shard_of_key("a.b", 4).is_ok());
        let err = shard_of_key("a..b", 4).unwrap_err();
        assert_eq!(err, KeyError::EmptyComponent);
        assert_eq!(err.errnum(), flux_wire::errnum::EINVAL);
        assert!(matches!(shard_of_key("", 4), Err(KeyError::Empty)));
        assert!(matches!(shard_of_key(".a", 4), Err(KeyError::EmptyComponent)));
        assert!(matches!(
            shard_of_key(&"x".repeat(MAX_KEY_LEN + 1), 4),
            Err(KeyError::TooLong(_))
        ));
    }

    #[test]
    fn canonical_hashing_matches_component_join() {
        // shard_of_key hashes the validated canonical path — identical
        // to hashing the component join, for every valid key.
        for key in ["a", "a.b", "deep.a.b.c.d"] {
            let canonical = key_components(key).unwrap().join(".");
            let digest = ObjectId::hash(canonical.as_bytes()).0;
            let h = u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]);
            assert_eq!(shard_of_key(key, 5), Ok(h % 5));
        }
    }

    #[test]
    fn partition_preserves_order_and_covers_all_tuples() {
        let tuples: Vec<(String, Option<ObjectId>)> =
            (0..32).map(|i| (format!("p.k{i}"), None)).collect();
        let parts = partition_tuples(tuples.clone(), 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 32);
        for (s, part) in parts.iter().enumerate() {
            let mut last = None;
            for (key, _) in part {
                assert_eq!(shard_of_key(key, 4), Ok(s as u32));
                // Order within a shard follows the original batch order.
                let idx: u32 = key.trim_start_matches("p.k").parse().unwrap();
                assert!(last.is_none_or(|l| l < idx));
                last = Some(idx);
            }
        }
    }

    #[test]
    fn key_on_shard_lands_where_asked() {
        for shard in 0..4 {
            let k = key_on_shard("t.s", shard, 4);
            assert_eq!(shard_of_key(&k, 4), Ok(shard));
        }
    }

    #[test]
    fn master_mapping_is_identity() {
        assert_eq!(master_of(0), Rank(0));
        assert_eq!(master_of(3), Rank(3));
    }
}
