//! Master-side commit application: rebuilding the hash tree.
//!
//! Implements the paper's update example: writing `a.b.c = 43` stores the
//! new value object, then rebuilds `b`, `a`, and the root bottom-up,
//! yielding a brand-new root reference while old objects remain for
//! readers still on the old root (which is what makes the root switch
//! atomic).

use crate::object::KvsObject;
use crate::path::key_components;
use crate::store::ObjectCache;
use flux_hash::ObjectId;
use std::collections::BTreeMap;

/// One committed operation: bind `key` to the object `id`, or unlink
/// `key` when `id` is `None`.
pub type Tuple = (String, Option<ObjectId>);

/// Applies `tuples` in order against the tree rooted at `root`, storing
/// new directory objects into `cache` and returning the new root id.
///
/// Intermediate path components that exist as values are silently
/// replaced by directories (last-writer-wins, consistent with the
/// prototype's behaviour for conflicting hierarchies). Unlinking a
/// missing key is a no-op. Tuples with invalid keys are skipped — they
/// were validated at `kvs.put` time, so this is defensive only.
pub fn apply_tuples(cache: &mut ObjectCache, root: ObjectId, tuples: &[Tuple]) -> ObjectId {
    // Build a patch trie of all changes, then rebuild each touched
    // directory exactly once (a fence of 8192 tuples must not rebuild the
    // root 8192 times).
    let mut patch = PatchNode::default();
    for (key, id) in tuples {
        let Ok(components) = key_components(key) else { continue };
        patch.insert(&components, *id);
    }
    rebuild(cache, Some(root), &patch)
}

/// A trie of pending changes, order-aware: applying a batch through the
/// trie produces exactly the tree that applying the tuples one at a time
/// would (tested by property `batch_equals_sequential`).
#[derive(Default)]
struct PatchNode {
    /// Terminal assignment at this path, if it is the *latest* write
    /// affecting this node.
    terminal: Option<Option<ObjectId>>,
    /// Deeper writes issued after any terminal write at this node.
    children: BTreeMap<String, PatchNode>,
    /// A terminal write (value or unlink) happened here earlier in the
    /// batch: the pre-existing directory content must be discarded even
    /// though later deeper writes re-created the node as a directory.
    base_cleared: bool,
}

impl PatchNode {
    fn insert(&mut self, components: &[String], id: Option<ObjectId>) {
        match components {
            [] => {
                // A terminal write supersedes all earlier deeper writes and
                // detaches from the pre-existing content.
                self.terminal = Some(id);
                self.children.clear();
                self.base_cleared = true;
            }
            [first, rest @ ..] => {
                let child = self.children.entry(first.clone()).or_default();
                if !rest.is_empty() && child.terminal.is_some() {
                    // A deeper write after a terminal write at `child`:
                    // the child becomes a directory built from scratch.
                    child.terminal = None;
                }
                child.insert(rest, id);
            }
        }
    }
}

/// Rebuilds the directory previously at `base` with `patch` applied,
/// returning the id of the resulting directory object.
fn rebuild(cache: &mut ObjectCache, base: Option<ObjectId>, patch: &PatchNode) -> ObjectId {
    // Start from the existing directory if there is one; a value (or a
    // missing object) in the way is replaced by an empty directory.
    let mut entries: BTreeMap<String, ObjectId> = match base.and_then(|id| cache.get(id)) {
        Some(obj) => match &*obj {
            KvsObject::Dir(e) => e.clone(),
            KvsObject::Val(_) => BTreeMap::new(),
        },
        None => BTreeMap::new(),
    };
    for (name, child_patch) in &patch.children {
        // A terminal assignment at the child level.
        let base_child = entries.get(name).copied();
        let after_terminal = match child_patch.terminal {
            Some(Some(id)) => Some(id),
            Some(None) => None,
            None => base_child,
        };
        if child_patch.children.is_empty() {
            match after_terminal {
                Some(id) => {
                    // flux-lint: allow(hotalloc) — the rebuilt directory
                    // owns its entry names; one short-string copy per
                    // *written* child, amortized over the whole batch.
                    entries.insert(name.clone(), id);
                }
                None => {
                    entries.remove(name);
                }
            }
        } else {
            // Descend: the child must become a directory. If a terminal
            // write happened at the child earlier in the batch, the
            // pre-existing content is discarded and the directory is
            // rebuilt from scratch.
            let descend_base = if child_patch.base_cleared { None } else { base_child };
            let new_child = rebuild(cache, descend_base, child_patch);
            // flux-lint: allow(hotalloc) — as above: the directory owns
            // its entry names, one copy per written child.
            entries.insert(name.clone(), new_child);
        }
    }
    cache.insert(KvsObject::Dir(entries))
}

/// Resolves `key` by walking directories from `root`, entirely within
/// `cache` (master-side: the cache is authoritative). Returns the object
/// id bound at the key, or `None` if any component is missing or a
/// non-directory is traversed.
pub fn resolve(cache: &mut ObjectCache, root: ObjectId, key: &str) -> Option<ObjectId> {
    let components = key_components(key).ok()?;
    let mut cur = root;
    for (i, comp) in components.iter().enumerate() {
        let obj = cache.get(cur)?;
        let KvsObject::Dir(entries) = &*obj else { return None };
        let next = entries.get(comp)?;
        if i == components.len() - 1 {
            return Some(*next);
        }
        cur = *next;
    }
    // Empty component list is impossible for a validated key; treat it
    // as unresolvable rather than panicking in the master's hot path.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_value::Value;

    fn val_id(cache: &mut ObjectCache, v: &str) -> ObjectId {
        cache.insert(KvsObject::Val(Value::from(v)))
    }

    fn get_val(cache: &mut ObjectCache, root: ObjectId, key: &str) -> Option<Value> {
        let id = resolve(cache, root, key)?;
        match &*cache.get(id)? {
            KvsObject::Val(v) => Some(v.clone()),
            KvsObject::Dir(_) => None,
        }
    }

    fn empty_root(cache: &mut ObjectCache) -> ObjectId {
        cache.insert(KvsObject::empty_dir())
    }

    #[test]
    fn paper_worked_example() {
        // Store a.b.c = 42, then update to 43; root must change both times
        // and old root must still resolve the old value.
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let v42 = cache.insert(KvsObject::Val(Value::Int(42)));
        let root1 = apply_tuples(&mut cache, root0, &[("a.b.c".into(), Some(v42))]);
        assert_ne!(root0, root1);
        assert_eq!(get_val(&mut cache, root1, "a.b.c"), Some(Value::Int(42)));

        let v43 = cache.insert(KvsObject::Val(Value::Int(43)));
        let root2 = apply_tuples(&mut cache, root1, &[("a.b.c".into(), Some(v43))]);
        assert_ne!(root1, root2);
        assert_eq!(get_val(&mut cache, root2, "a.b.c"), Some(Value::Int(43)));
        // Old snapshot still intact (atomic root switch).
        assert_eq!(get_val(&mut cache, root1, "a.b.c"), Some(Value::Int(42)));
    }

    #[test]
    fn multiple_keys_one_commit() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "A");
        let b = val_id(&mut cache, "B");
        let c = val_id(&mut cache, "C");
        let root = apply_tuples(
            &mut cache,
            root0,
            &[
                ("x.one".into(), Some(a)),
                ("x.two".into(), Some(b)),
                ("y".into(), Some(c)),
            ],
        );
        assert_eq!(get_val(&mut cache, root, "x.one"), Some(Value::from("A")));
        assert_eq!(get_val(&mut cache, root, "x.two"), Some(Value::from("B")));
        assert_eq!(get_val(&mut cache, root, "y"), Some(Value::from("C")));
    }

    #[test]
    fn sibling_updates_preserve_untouched_keys() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "A");
        let root1 = apply_tuples(&mut cache, root0, &[("d.a".into(), Some(a))]);
        let b = val_id(&mut cache, "B");
        let root2 = apply_tuples(&mut cache, root1, &[("d.b".into(), Some(b))]);
        assert_eq!(get_val(&mut cache, root2, "d.a"), Some(Value::from("A")));
        assert_eq!(get_val(&mut cache, root2, "d.b"), Some(Value::from("B")));
    }

    #[test]
    fn unlink_removes_and_missing_unlink_is_noop() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "A");
        let root1 = apply_tuples(&mut cache, root0, &[("k".into(), Some(a))]);
        let root2 = apply_tuples(&mut cache, root1, &[("k".into(), None)]);
        assert_eq!(resolve(&mut cache, root2, "k"), None);
        let root3 = apply_tuples(&mut cache, root2, &[("nothere".into(), None)]);
        assert_eq!(root2, root3, "no-op unlink yields identical tree");
    }

    #[test]
    fn same_key_last_tuple_wins() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "first");
        let b = val_id(&mut cache, "second");
        let root = apply_tuples(
            &mut cache,
            root0,
            &[("k".into(), Some(a)), ("k".into(), Some(b))],
        );
        assert_eq!(get_val(&mut cache, root, "k"), Some(Value::from("second")));
    }

    #[test]
    fn value_replaced_by_directory_on_deeper_write() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "scalar");
        let root1 = apply_tuples(&mut cache, root0, &[("p".into(), Some(a))]);
        let b = val_id(&mut cache, "deep");
        let root2 = apply_tuples(&mut cache, root1, &[("p.q".into(), Some(b))]);
        assert_eq!(get_val(&mut cache, root2, "p.q"), Some(Value::from("deep")));
        assert_eq!(get_val(&mut cache, root2, "p"), None, "p is now a directory");
    }

    #[test]
    fn identical_content_gives_identical_roots() {
        // Content addressing: two sessions committing the same data end up
        // at the same root id.
        let build = || {
            let mut cache = ObjectCache::new();
            let root0 = empty_root(&mut cache);
            let v = cache.insert(KvsObject::Val(Value::from("same")));
            apply_tuples(&mut cache, root0, &[("a.b".into(), Some(v)), ("c".into(), Some(v))])
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn big_fence_rebuilds_each_directory_once() {
        // 1000 keys in one directory: the patch-trie application should
        // create ~1 new dir object per level, not 1000.
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let entries_before = cache.stats().entries;
        let tuples: Vec<Tuple> = (0..1000)
            .map(|i| {
                let id = cache.insert(KvsObject::Val(Value::Int(i)));
                (format!("dir.k{i:04}"), Some(id))
            })
            .collect();
        let root = apply_tuples(&mut cache, root0, &tuples);
        assert_eq!(get_val(&mut cache, root, "dir.k0500"), Some(Value::Int(500)));
        let created = cache.stats().entries - entries_before;
        // 1000 values + new "dir" + new root = 1002.
        assert_eq!(created, 1002);
    }

    #[test]
    fn resolve_rejects_traversal_through_values() {
        let mut cache = ObjectCache::new();
        let root0 = empty_root(&mut cache);
        let a = val_id(&mut cache, "leaf");
        let root = apply_tuples(&mut cache, root0, &[("x".into(), Some(a))]);
        assert_eq!(resolve(&mut cache, root, "x.deeper"), None);
        assert_eq!(resolve(&mut cache, root, "missing"), None);
    }
}
