//! The per-broker object cache.
//!
//! The master's cache is authoritative and never expires; slave caches
//! evict entries unused for a configurable number of heartbeat epochs
//! ("Unused slave object cache entries are expired after a period of
//! disuse to save memory").

use crate::object::KvsObject;
use flux_hash::ObjectId;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache occupancy and traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Objects currently resident.
    pub entries: usize,
    /// Sum of approximate object sizes resident.
    pub bytes: usize,
    /// Lookup hits since creation.
    pub hits: u64,
    /// Lookup misses since creation.
    pub misses: u64,
    /// Entries expired so far.
    pub expired: u64,
}

struct Entry {
    obj: Arc<KvsObject>,
    size: usize,
    last_used_epoch: u64,
}

/// A content-addressed object cache.
pub struct ObjectCache {
    map: HashMap<ObjectId, Entry>,
    stats: CacheStats,
    epoch: u64,
}

impl ObjectCache {
    /// Creates an empty cache pre-seeded with the session's initial empty
    /// root directory (every broker derives the same id for it).
    pub fn new() -> ObjectCache {
        let mut c = ObjectCache { map: HashMap::new(), stats: CacheStats::default(), epoch: 0 };
        c.insert(KvsObject::empty_dir());
        c
    }

    /// Inserts an object, returning its content address. Idempotent.
    pub fn insert(&mut self, obj: KvsObject) -> ObjectId {
        let id = obj.id();
        self.insert_with_id(id, obj);
        id
    }

    /// Inserts an object whose id the caller already computed.
    ///
    /// # Panics
    /// In debug builds, panics if `id` does not match the content.
    pub fn insert_with_id(&mut self, id: ObjectId, obj: KvsObject) {
        debug_assert_eq!(id, obj.id(), "content address mismatch");
        let epoch = self.epoch;
        let size = obj.approx_size();
        self.map.entry(id).or_insert_with(|| {
            self.stats.entries += 1;
            self.stats.bytes += size;
            Entry { obj: Arc::new(obj), size, last_used_epoch: epoch }
        });
    }

    /// Looks up an object, refreshing its last-used epoch on hit.
    pub fn get(&mut self, id: ObjectId) -> Option<Arc<KvsObject>> {
        match self.map.get_mut(&id) {
            Some(e) => {
                e.last_used_epoch = self.epoch;
                self.stats.hits += 1;
                Some(Arc::clone(&e.obj))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// True if the object is resident (does not refresh last-used).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// Advances the cache's epoch (called on heartbeats).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Expires entries unused for more than `max_idle_epochs`, keeping the
    /// objects in `pinned` (the current root path must never be evicted
    /// mid-lookup; callers pin the current root).
    pub fn expire(&mut self, max_idle_epochs: u64, pinned: &[ObjectId]) {
        let cutoff = self.epoch.saturating_sub(max_idle_epochs);
        let stats = &mut self.stats;
        self.map.retain(|id, e| {
            if e.last_used_epoch >= cutoff || pinned.contains(id) {
                true
            } else {
                stats.entries -= 1;
                stats.bytes -= e.size;
                stats.expired += 1;
                false
            }
        });
    }

    /// Occupancy and traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl Default for ObjectCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_value::Value;

    fn obj(s: &str) -> KvsObject {
        KvsObject::Val(Value::from(s))
    }

    #[test]
    fn starts_with_empty_root() {
        let c = ObjectCache::new();
        assert!(c.contains(KvsObject::empty_dir().id()));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = ObjectCache::new();
        let id = c.insert(obj("hello"));
        assert_eq!(*c.get(id).unwrap(), obj("hello"));
        assert!(c.get(ObjectId::hash(b"missing")).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = ObjectCache::new();
        let a = c.insert(obj("x"));
        let b = c.insert(obj("x"));
        assert_eq!(a, b);
        assert_eq!(c.stats().entries, 2); // root + one object
    }

    #[test]
    fn expiry_honours_idle_epochs_and_pins() {
        let mut c = ObjectCache::new();
        let old = c.insert(obj("old"));
        let pinned = c.insert(obj("pinned"));
        c.set_epoch(10);
        let fresh = c.insert(obj("fresh"));
        let _ = c.get(fresh);
        c.expire(5, &[pinned]);
        assert!(!c.contains(old), "idle entry expired");
        assert!(c.contains(pinned), "pinned entry kept");
        assert!(c.contains(fresh), "fresh entry kept");
        assert_eq!(c.stats().expired, 2); // `old` and the initial root
    }

    #[test]
    fn get_refreshes_last_used() {
        let mut c = ObjectCache::new();
        let id = c.insert(obj("keepalive"));
        for epoch in 1..20 {
            c.set_epoch(epoch);
            assert!(c.get(id).is_some());
            c.expire(2, &[]);
        }
        assert!(c.contains(id));
    }

    #[test]
    fn bytes_accounting_tracks_content() {
        let mut c = ObjectCache::new();
        let before = c.stats().bytes;
        c.insert(obj(&"x".repeat(1000)));
        assert!(c.stats().bytes >= before + 1000);
        c.set_epoch(100);
        c.expire(1, &[]);
        assert!(c.stats().bytes < 100);
    }
}
