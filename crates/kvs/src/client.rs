//! Client-side KVS operations.
//!
//! [`KvsClient`] wraps a [`flux_broker::client::ClientCore`] with typed
//! request builders and response decoding for every KVS operation the
//! paper's API lists: `kvs_put`, `kvs_commit`, `kvs_fence`, `kvs_get`,
//! `kvs_get_version`, `kvs_wait_version`, `kvs_watch` (plus `unlink`,
//! `dir` and `stats`). It is sans-io like everything else: builders
//! return [`Message`]s for the runtime to transmit; incoming messages are
//! classified with [`KvsClient::deliver`].

use flux_broker::client::{ClientCore, Delivery};
use flux_broker::ClientId;
use flux_value::Value;
use flux_proto::KvsMethod;
use flux_wire::{Message, MsgId, Rank};

/// A decoded KVS reply.
#[derive(Debug, Clone, PartialEq)]
pub enum KvsReply {
    /// `put`/`unlink`/`unwatch` acknowledgement.
    Ack,
    /// `commit`/`fence`/`get_version`/`wait_version`: the root version.
    Version {
        /// Monotonic store version.
        version: u64,
        /// Root reference (hex) at that version.
        root: String,
    },
    /// `get`: the value bound at the key.
    Value(Value),
    /// `get` with `dir`: a name → SHA1-hex listing.
    Dir(Value),
    /// A `watch` update (also the initial snapshot): key and new value
    /// (`Null` once the key disappears).
    WatchUpdate {
        /// Watched key.
        key: String,
        /// Current value.
        value: Value,
    },
    /// `stats` payload, raw.
    Stats(Value),
    /// Sharded `commit`/`fence`: the consistent per-shard frontier the
    /// operation observed.
    Frontier {
        /// Total shard count of the session.
        shards: u32,
        /// `(shard, version, root hex)` per shard the operation touched,
        /// in shard order.
        entries: Vec<(u32, u64, String)>,
    },
    /// The operation failed with this error number.
    Err(u32),
}

/// What a message delivered to the client means, KVS-typed.
#[derive(Debug, Clone, PartialEq)]
pub enum KvsDelivery {
    /// Reply to the request issued under `tag`.
    Reply {
        /// Caller-chosen correlation tag.
        tag: u64,
        /// The decoded reply.
        reply: KvsReply,
    },
    /// A subscribed event (e.g. `kvs.setroot` if the client subscribed).
    Event(Message),
    /// Response matching nothing outstanding.
    Unmatched(Message),
}

/// Typed client for the `kvs` service.
pub struct KvsClient {
    core: ClientCore,
}

impl KvsClient {
    /// Creates a client attached to the broker at `broker_rank` with the
    /// broker-local connection id `client_id`.
    pub fn new(broker_rank: Rank, client_id: ClientId) -> KvsClient {
        KvsClient { core: ClientCore::new(broker_rank, client_id) }
    }

    /// The underlying protocol core (for mixing in non-KVS requests).
    pub fn core_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }

    /// Number of outstanding requests.
    pub fn outstanding_len(&self) -> usize {
        self.core.outstanding_len()
    }

    /// `kvs_put(key, val)` — asynchronous write-back; the ack returns as
    /// soon as the local broker has cached the object.
    pub fn put(&mut self, key: &str, val: Value, tag: u64) -> Message {
        let payload = Value::from_pairs([("k", Value::from(key)), ("v", val)]);
        self.core.request(KvsMethod::Put.topic(), payload, tag)
    }

    /// Queues an unlink of `key`.
    pub fn unlink(&mut self, key: &str, tag: u64) -> Message {
        let payload = Value::from_pairs([("k", Value::from(key))]);
        self.core.request(KvsMethod::Unlink.topic(), payload, tag)
    }

    /// `kvs_commit()` — synchronously flush this client's puts; the reply
    /// carries the new root version.
    pub fn commit(&mut self, tag: u64) -> Message {
        self.core.request(KvsMethod::Commit.topic(), Value::object(), tag)
    }

    /// `kvs_fence(name, nprocs)` — collective commit across `nprocs`
    /// participants.
    pub fn fence(&mut self, name: &str, nprocs: u64, tag: u64) -> Message {
        let payload = Value::from_pairs([
            ("name", Value::from(name)),
            ("nprocs", Value::from(nprocs as i64)),
        ]);
        self.core.request(KvsMethod::Fence.topic(), payload, tag)
    }

    /// `kvs_get(key)`.
    pub fn get(&mut self, key: &str, tag: u64) -> Message {
        let payload = Value::from_pairs([("k", Value::from(key))]);
        self.core.request(KvsMethod::Get.topic(), payload, tag)
    }

    /// Directory listing of `key`.
    pub fn get_dir(&mut self, key: &str, tag: u64) -> Message {
        let payload =
            Value::from_pairs([("k", Value::from(key)), ("dir", Value::Bool(true))]);
        self.core.request(KvsMethod::Get.topic(), payload, tag)
    }

    /// `kvs_get_version()`.
    pub fn get_version(&mut self, tag: u64) -> Message {
        self.core.request(KvsMethod::GetVersion.topic(), Value::object(), tag)
    }

    /// `kvs_get_version` against one shard's version stream.
    pub fn get_version_shard(&mut self, shard: u32, tag: u64) -> Message {
        let payload = Value::from_pairs([("shard", Value::from(shard as i64))]);
        self.core.request(KvsMethod::GetVersion.topic(), payload, tag)
    }

    /// `kvs_wait_version(v)` — replies once the store reaches version `v`.
    pub fn wait_version(&mut self, version: u64, tag: u64) -> Message {
        let payload = Value::from_pairs([("version", Value::from(version as i64))]);
        self.core.request(KvsMethod::WaitVersion.topic(), payload, tag)
    }

    /// `kvs_wait_version(v)` against one shard's version stream.
    pub fn wait_version_shard(&mut self, version: u64, shard: u32, tag: u64) -> Message {
        let payload = Value::from_pairs([
            ("version", Value::from(version as i64)),
            ("shard", Value::from(shard as i64)),
        ]);
        self.core.request(KvsMethod::WaitVersion.topic(), payload, tag)
    }

    /// `kvs_watch(key, callback)` — the reply streams: an initial snapshot
    /// then one update per change. Returns the message and its id (pass
    /// the id to [`KvsClient::unwatch`] bookkeeping if needed).
    pub fn watch(&mut self, key: &str, tag: u64) -> (Message, MsgId) {
        let payload = Value::from_pairs([("k", Value::from(key))]);
        let msg = self.core.request(KvsMethod::Watch.topic(), payload, tag);
        let id = msg.header.id;
        self.core.expect_stream(id);
        (msg, id)
    }

    /// Cancels this client's watch on `key` (also deregister the stream
    /// locally by passing the watch id).
    pub fn unwatch(&mut self, key: &str, watch_id: MsgId, tag: u64) -> Message {
        self.core.cancel(watch_id);
        let payload = Value::from_pairs([("k", Value::from(key))]);
        self.core.request(KvsMethod::Unwatch.topic(), payload, tag)
    }

    /// KVS cache statistics from the local broker.
    pub fn stats(&mut self, tag: u64) -> Message {
        self.core.request(KvsMethod::Stats.topic(), Value::object(), tag)
    }

    /// Classifies and decodes an incoming message.
    pub fn deliver(&mut self, msg: Message) -> KvsDelivery {
        match self.core.deliver(msg) {
            Delivery::Response { tag, msg } => {
                KvsDelivery::Reply { tag, reply: decode_reply(&msg) }
            }
            Delivery::Event(m) => KvsDelivery::Event(m),
            Delivery::Unmatched(m) => KvsDelivery::Unmatched(m),
        }
    }
}

/// Decodes a KVS response message into a [`KvsReply`] based on its
/// topic. The match over [`KvsMethod`] is exhaustive: adding a method to
/// the registry forces a decoding decision here.
pub fn decode_reply(msg: &Message) -> KvsReply {
    if msg.is_error() {
        return KvsReply::Err(msg.header.errnum);
    }
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Put | KvsMethod::Unlink | KvsMethod::Unwatch) => KvsReply::Ack,
        Some(
            KvsMethod::Commit
            | KvsMethod::Fence
            | KvsMethod::GetVersion
            | KvsMethod::WaitVersion
            | KvsMethod::Push
            | KvsMethod::ShardPush,
        ) => {
            // Sharded commits and fences answer with a per-shard
            // frontier instead of one version.
            if let Some(entries) = msg.payload.get("frontier").and_then(Value::as_array) {
                let shards =
                    msg.payload.get("shards").and_then(Value::as_uint).unwrap_or(0) as u32;
                let entries = entries
                    .iter()
                    .map(|e| {
                        (
                            e.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32,
                            e.get("version").and_then(Value::as_uint).unwrap_or(0),
                            e.get("root")
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_owned(),
                        )
                    })
                    .collect();
                return KvsReply::Frontier { shards, entries };
            }
            KvsReply::Version {
                version: msg.payload.get("version").and_then(Value::as_uint).unwrap_or(0),
                root: msg
                    .payload
                    .get("root")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            }
        }
        Some(KvsMethod::Get) => {
            if let Some(dir) = msg.payload.get("dir") {
                KvsReply::Dir(dir.clone())
            } else {
                KvsReply::Value(msg.payload.get("v").cloned().unwrap_or(Value::Null))
            }
        }
        Some(KvsMethod::Watch) => KvsReply::WatchUpdate {
            key: msg.payload.get("k").and_then(Value::as_str).unwrap_or_default().to_owned(),
            value: msg.payload.get("v").cloned().unwrap_or(Value::Null),
        },
        // Internal transfers carry their payload through raw.
        Some(KvsMethod::Stats | KvsMethod::Load | KvsMethod::FenceUp) => {
            KvsReply::Stats(msg.payload.value().clone())
        }
        // Not a declared KVS method: nothing this client could have sent.
        None => KvsReply::Err(flux_wire::errnum::ENOSYS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_emit_expected_topics() {
        let mut c = KvsClient::new(Rank(3), 1);
        let topic_of = |m: KvsMethod| m.topic_str();
        assert_eq!(c.put("a.b", Value::Int(1), 0).header.topic.as_str(), topic_of(KvsMethod::Put));
        assert_eq!(c.unlink("a.b", 0).header.topic.as_str(), topic_of(KvsMethod::Unlink));
        assert_eq!(c.commit(0).header.topic.as_str(), topic_of(KvsMethod::Commit));
        assert_eq!(c.fence("f", 4, 0).header.topic.as_str(), topic_of(KvsMethod::Fence));
        assert_eq!(c.get("a.b", 0).header.topic.as_str(), topic_of(KvsMethod::Get));
        assert_eq!(c.get_version(0).header.topic.as_str(), topic_of(KvsMethod::GetVersion));
        assert_eq!(c.wait_version(3, 0).header.topic.as_str(), topic_of(KvsMethod::WaitVersion));
        let (w, _) = c.watch("a.b", 0);
        assert_eq!(w.header.topic.as_str(), topic_of(KvsMethod::Watch));
    }

    #[test]
    fn decode_version_reply() {
        let mut c = KvsClient::new(Rank(0), 0);
        let req = c.commit(9);
        let resp = Message::response_to(
            &req,
            Value::from_pairs([
                ("version", Value::Int(4)),
                ("root", Value::from("abcd")),
            ]),
        );
        match c.deliver(resp) {
            KvsDelivery::Reply { tag: 9, reply: KvsReply::Version { version, root } } => {
                assert_eq!(version, 4);
                assert_eq!(root, "abcd");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_error_reply() {
        let mut c = KvsClient::new(Rank(0), 0);
        let req = c.get("missing", 1);
        let resp = Message::error_response_to(&req, flux_wire::errnum::ENOENT);
        match c.deliver(resp) {
            KvsDelivery::Reply { reply: KvsReply::Err(e), .. } => {
                assert_eq!(e, flux_wire::errnum::ENOENT);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn watch_stream_stays_registered() {
        let mut c = KvsClient::new(Rank(0), 0);
        let (req, id) = c.watch("k", 2);
        let upd = Message::response_to(
            &req,
            Value::from_pairs([("k", Value::from("k")), ("v", Value::Int(1))]),
        );
        for _ in 0..3 {
            assert!(matches!(
                c.deliver(upd.clone()),
                KvsDelivery::Reply { tag: 2, reply: KvsReply::WatchUpdate { .. } }
            ));
        }
        let un = c.unwatch("k", id, 3);
        assert_eq!(un.header.topic.as_str(), KvsMethod::Unwatch.topic_str());
        assert!(matches!(c.deliver(upd), KvsDelivery::Unmatched(_)));
    }
}
