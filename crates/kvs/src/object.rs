//! KVS objects: values and directories.

use flux_hash::ObjectId;
use flux_value::{Map, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A stored object: either a JSON value or a directory mapping names to
/// other objects by their SHA1 reference (paper §IV-B: "A directory is an
/// object that maps a list of names to other objects by their SHA1
/// reference").
#[derive(Clone, PartialEq, Debug)]
pub enum KvsObject {
    /// A terminal JSON value.
    Val(Value),
    /// A directory: name → object reference, deterministically ordered.
    Dir(BTreeMap<String, ObjectId>),
}

/// Errors converting wire payloads into objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// Payload was not a recognizable object encoding.
    Malformed,
    /// A directory entry's SHA1 reference failed to parse.
    BadReference,
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::Malformed => write!(f, "malformed KVS object"),
            ObjectError::BadReference => write!(f, "bad SHA1 reference in directory"),
        }
    }
}

impl std::error::Error for ObjectError {}

impl KvsObject {
    /// An empty directory (the initial root of every session).
    pub fn empty_dir() -> KvsObject {
        KvsObject::Dir(BTreeMap::new())
    }

    /// True if this is a directory.
    pub fn is_dir(&self) -> bool {
        matches!(self, KvsObject::Dir(_))
    }

    /// The canonical byte encoding this object is hashed over.
    ///
    /// Values and directories get distinct leading tags so a value that
    /// *looks* like a directory listing cannot collide with one.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvsObject::Val(v) => {
                let mut out = vec![b'V'];
                v.encode_canonical_into(&mut out);
                out
            }
            KvsObject::Dir(entries) => {
                let mut out = vec![b'D'];
                flux_value::write_varint(&mut out, entries.len() as u64);
                for (name, id) in entries {
                    flux_value::write_varint(&mut out, name.len() as u64);
                    out.extend_from_slice(name.as_bytes());
                    out.extend_from_slice(&id.0);
                }
                out
            }
        }
    }

    /// Decodes the canonical byte encoding.
    pub fn decode(bytes: &[u8]) -> Result<KvsObject, ObjectError> {
        match bytes.first() {
            Some(b'V') => Value::decode_canonical(&bytes[1..])
                .map(KvsObject::Val)
                .map_err(|_| ObjectError::Malformed),
            Some(b'D') => {
                let mut pos = 1;
                let (count, used) =
                    flux_value::read_varint(&bytes[pos..]).map_err(|_| ObjectError::Malformed)?;
                pos += used;
                let mut entries = BTreeMap::new();
                for _ in 0..count {
                    let (nlen, used) = flux_value::read_varint(&bytes[pos..])
                        .map_err(|_| ObjectError::Malformed)?;
                    pos += used;
                    let nlen = nlen as usize;
                    if pos + nlen + 20 > bytes.len() {
                        return Err(ObjectError::Malformed);
                    }
                    let name = std::str::from_utf8(&bytes[pos..pos + nlen])
                        .map_err(|_| ObjectError::Malformed)?
                        .to_owned();
                    pos += nlen;
                    let mut digest = [0u8; 20];
                    digest.copy_from_slice(&bytes[pos..pos + 20]);
                    pos += 20;
                    entries.insert(name, ObjectId(digest));
                }
                if pos != bytes.len() {
                    return Err(ObjectError::Malformed);
                }
                Ok(KvsObject::Dir(entries))
            }
            _ => Err(ObjectError::Malformed),
        }
    }

    /// The content address: SHA1 of the canonical encoding.
    pub fn id(&self) -> ObjectId {
        ObjectId::hash(&self.encode())
    }

    /// Approximate in-memory/wire size in bytes (drives cache accounting
    /// and the simulator's transfer costs — a directory with G entries is
    /// ~50·G bytes, which is what makes single-directory `kvs_get` heavy
    /// at scale, Fig. 4a).
    pub fn approx_size(&self) -> usize {
        match self {
            KvsObject::Val(v) => 1 + v.approx_size(),
            KvsObject::Dir(entries) => {
                1 + entries.keys().map(|name| name.len() + 28).sum::<usize>()
            }
        }
    }

    /// Embeds the object in a JSON payload (for `kvs.load` responses and
    /// fence/commit object manifests).
    pub fn to_value(&self) -> Value {
        match self {
            KvsObject::Val(v) => {
                Value::from_pairs([("t", Value::from("val")), ("v", v.clone())])
            }
            KvsObject::Dir(entries) => {
                let mut m = Map::new();
                for (name, id) in entries {
                    m.insert(name.clone(), Value::from(id.to_hex()));
                }
                Value::from_pairs([("t", Value::from("dir")), ("e", Value::Object(m))])
            }
        }
    }

    /// Parses the [`KvsObject::to_value`] embedding.
    pub fn from_value(v: &Value) -> Result<KvsObject, ObjectError> {
        match v.get("t").and_then(Value::as_str) {
            Some("val") => Ok(KvsObject::Val(v.get("v").cloned().unwrap_or(Value::Null))),
            Some("dir") => {
                let entries = v
                    .get("e")
                    .and_then(Value::as_object)
                    .ok_or(ObjectError::Malformed)?;
                // flux-lint: allow(hotalloc) — decodes a wire directory
                // object into the owned map the cache keeps; the object
                // outlives the message, so entries must be owned.
                let mut out = BTreeMap::new();
                for (name, idv) in entries {
                    let hex = idv.as_str().ok_or(ObjectError::BadReference)?;
                    let id = ObjectId::from_hex(hex).map_err(|_| ObjectError::BadReference)?;
                    // flux-lint: allow(hotalloc) — owned entry name for
                    // the decoded directory, as above.
                    out.insert(name.clone(), id);
                }
                Ok(KvsObject::Dir(out))
            }
            _ => Err(ObjectError::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(pairs: &[(&str, &[u8])]) -> KvsObject {
        KvsObject::Dir(
            pairs
                .iter()
                .map(|(n, c)| (n.to_string(), ObjectId::hash(c)))
                .collect(),
        )
    }

    #[test]
    fn encode_roundtrip_val() {
        for v in [
            Value::Null,
            Value::Int(42),
            Value::from("hello"),
            Value::parse(r#"{"a":[1,2,{"b":null}]}"#).unwrap(),
        ] {
            let obj = KvsObject::Val(v);
            assert_eq!(KvsObject::decode(&obj.encode()).unwrap(), obj);
        }
    }

    #[test]
    fn encode_roundtrip_dir() {
        for obj in [
            KvsObject::empty_dir(),
            dir(&[("a", b"1")]),
            dir(&[("alpha", b"1"), ("beta", b"2"), ("z", b"3")]),
        ] {
            assert_eq!(KvsObject::decode(&obj.encode()).unwrap(), obj);
        }
    }

    #[test]
    fn ids_differ_between_val_and_dir() {
        // An empty directory and an empty object value must not collide.
        let d = KvsObject::empty_dir();
        let v = KvsObject::Val(Value::object());
        assert_ne!(d.id(), v.id());
    }

    #[test]
    fn same_content_same_id() {
        let a = KvsObject::Val(Value::from("x".repeat(100)));
        let b = KvsObject::Val(Value::from("x".repeat(100)));
        assert_eq!(a.id(), b.id());
        let c = KvsObject::Val(Value::from("y".repeat(100)));
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn value_embedding_roundtrip() {
        for obj in [
            KvsObject::Val(Value::parse(r#"{"k":[1,"s"]}"#).unwrap()),
            KvsObject::empty_dir(),
            dir(&[("n1", b"a"), ("n2", b"b")]),
        ] {
            let back = KvsObject::from_value(&obj.to_value()).unwrap();
            assert_eq!(back, obj);
            assert_eq!(back.id(), obj.id());
        }
    }

    #[test]
    fn from_value_rejects_garbage() {
        assert!(KvsObject::from_value(&Value::Null).is_err());
        assert!(KvsObject::from_value(&Value::from_pairs([("t", Value::from("x"))])).is_err());
        let bad_ref = Value::from_pairs([
            ("t", Value::from("dir")),
            ("e", Value::from_pairs([("n", Value::from("nothex"))])),
        ]);
        assert_eq!(KvsObject::from_value(&bad_ref), Err(ObjectError::BadReference));
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(KvsObject::decode(b"").is_err());
        assert!(KvsObject::decode(b"X123").is_err());
        let enc = dir(&[("name", b"c")]).encode();
        for cut in 0..enc.len() {
            assert!(KvsObject::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn dir_size_scales_with_entries() {
        let small = dir(&[("a", b"1")]);
        let entries: Vec<(String, ObjectId)> =
            (0..1000).map(|i| (format!("k{i:04}"), ObjectId::hash(b"v"))).collect();
        let big = KvsObject::Dir(entries.into_iter().collect());
        assert!(big.approx_size() > 100 * small.approx_size());
        // ~33 bytes/entry at minimum.
        assert!(big.approx_size() >= 1000 * 30);
    }
}
