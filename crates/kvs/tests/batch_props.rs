//! Property test: master-side commit batching preserves the KVS
//! consistency contract for any batch window and flush threshold.
//!
//! Random commit storms run against a session whose master coalesces
//! concurrent pushes; the recorded per-client histories are validated
//! with the same checker (`flux_kvs::history`) the chaos sweep uses.

use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_kvs::history::{check, ClientHistory, Event};
use flux_kvs::{KvsConfig, KvsModule};
use flux_value::Value;
use flux_wire::{Message, Rank};
use proptest::prelude::*;

fn pump_one(net: &mut TestNet, rank: Rank, cid: u32) -> Message {
    let mut msgs = net.take_client_msgs(rank, cid);
    for _ in 0..2000 {
        if !msgs.is_empty() {
            break;
        }
        if !net.fire_next_timer() {
            break;
        }
        msgs.extend(net.take_client_msgs(rank, cid));
    }
    assert_eq!(msgs.len(), 1, "one reply expected");
    msgs.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writers on distinct slave ranks stage and commit in rounds; every
    /// round's pushes land inside one batch window. Whatever the window
    /// and threshold, the histories must satisfy read-your-writes,
    /// monotonic reads, and monotonic versions — and the master must
    /// never walk the hash tree more often than it received pushes.
    #[test]
    fn batched_commit_storms_stay_consistent(
        writers in 2u32..6,
        rounds in 1u64..4,
        window_sel in 0usize..4,
        batch_max in 1usize..8,
    ) {
        let window = [0u64, 500, 5_000, 50_000][window_sel];
        let size = writers + 1;
        let cfg = KvsConfig { batch_window_ns: window, batch_max, ..KvsConfig::default() };
        let mut net = TestNet::new(size, 2, move |_| {
            vec![Box::new(KvsModule::with_config(cfg)) as Box<dyn CommsModule>]
        });
        let mut clients: Vec<KvsClient> =
            (1..=writers).map(|r| KvsClient::new(Rank(r), 0)).collect();
        let mut histories: Vec<ClientHistory> = (1..=writers)
            .map(|r| ClientHistory { client: format!("rank{r}"), events: Vec::new() })
            .collect();
        for round in 1..=rounds {
            // All writers stage and commit before any timer fires, so the
            // round's pushes are concurrent at the master.
            for w in 0..writers {
                let rank = Rank(w + 1);
                let c = &mut clients[w as usize];
                let put = c.put(&format!("bp.w{w}"), Value::Int(round as i64), 1);
                net.client_send(rank, 0, put);
                let ack = c.deliver(pump_one(&mut net, rank, 0));
                prop_assert!(
                    matches!(ack, KvsDelivery::Reply { reply: KvsReply::Ack, .. }),
                    "{ack:?}"
                );
                let commit = c.commit(2);
                net.client_send(rank, 0, commit);
            }
            for w in 0..writers {
                let rank = Rank(w + 1);
                let m = pump_one(&mut net, rank, 0);
                match clients[w as usize].deliver(m) {
                    KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                        histories[w as usize].events.push(Event::Committed {
                            key: format!("bp.w{w}"),
                            gen: round,
                            version,
                        });
                    }
                    other => prop_assert!(false, "commit reply {other:?}"),
                }
            }
        }
        // Read-your-writes after the storm (repeat gets also exercise the
        // slave lookup memo).
        for w in 0..writers {
            let rank = Rank(w + 1);
            let c = &mut clients[w as usize];
            for tag in [3, 4] {
                let get = c.get(&format!("bp.w{w}"), tag);
                net.client_send(rank, 0, get);
                let m = pump_one(&mut net, rank, 0);
                match c.deliver(m) {
                    KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                        histories[w as usize].events.push(Event::Read {
                            key: format!("bp.w{w}"),
                            gen: v.as_int().map(|g| g as u64),
                        });
                    }
                    other => prop_assert!(false, "get reply {other:?}"),
                }
            }
        }
        // An independent observer interleaves version probes with reads
        // of every key (monotonic reads + versions across clients).
        let mut obs = KvsClient::new(Rank(1), 9);
        let mut oh = ClientHistory { client: "observer".into(), events: Vec::new() };
        for pass in 0..2u64 {
            let probe = obs.get_version(10 + pass);
            net.client_send(Rank(1), 9, probe);
            match obs.deliver(pump_one(&mut net, Rank(1), 9)) {
                KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                    oh.events.push(Event::Version { v: version });
                }
                other => prop_assert!(false, "probe {other:?}"),
            }
            for w in 0..writers {
                let get = obs.get(&format!("bp.w{w}"), 20);
                net.client_send(Rank(1), 9, get);
                match obs.deliver(pump_one(&mut net, Rank(1), 9)) {
                    KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                        oh.events.push(Event::Read {
                            key: format!("bp.w{w}"),
                            gen: v.as_int().map(|g| g as u64),
                        });
                    }
                    other => prop_assert!(false, "observer get {other:?}"),
                }
            }
        }
        histories.push(oh);
        let violations = check(&histories);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Master-side accounting: applies never exceed pushes, and a full
        // round parked inside one window must actually coalesce.
        let mut probe = KvsClient::new(Rank(0), 5);
        let st = probe.stats(1);
        net.client_send(Rank(0), 5, st);
        match probe.deliver(pump_one(&mut net, Rank(0), 5)) {
            KvsDelivery::Reply { reply: KvsReply::Stats(s), .. } => {
                let commits = s.get("commits").and_then(Value::as_int).unwrap();
                let total = i64::from(writers) * rounds as i64;
                prop_assert!(commits <= total, "applies {commits} > pushes {total}");
                if window > 0 && batch_max as u32 >= writers {
                    prop_assert!(
                        commits < total,
                        "a round inside one window must coalesce ({commits} of {total})"
                    );
                }
            }
            other => prop_assert!(false, "stats {other:?}"),
        }
    }
}
