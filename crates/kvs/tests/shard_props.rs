//! Property test: sharded multi-master commits preserve the KVS
//! consistency contract across shard boundaries.
//!
//! Random key sets are spread over 1–8 shard masters; writers on slave
//! ranks run concurrent commit storms and collective fences. The
//! recorded histories are validated with the extended cross-shard
//! checker (`flux_kvs::history`): read-your-writes and monotonic reads
//! per client across shard boundaries, per-shard monotonic versions,
//! and fence-frontier agreement.

use std::collections::HashMap;

use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_kvs::history::{check, ClientHistory, Event};
use flux_kvs::shard::shard_of_key;
use flux_kvs::{KvsConfig, KvsModule};
use flux_value::Value;
use flux_wire::{Message, Rank};
use proptest::prelude::*;

fn pump_one(net: &mut TestNet, rank: Rank, cid: u32) -> Message {
    let mut msgs = net.take_client_msgs(rank, cid);
    for _ in 0..2000 {
        if !msgs.is_empty() {
            break;
        }
        if !net.fire_next_timer() {
            break;
        }
        msgs.extend(net.take_client_msgs(rank, cid));
    }
    assert_eq!(msgs.len(), 1, "one reply expected");
    msgs.remove(0)
}

/// The keys writer `w` owns in this run (two per writer so most runs
/// span several shards).
fn writer_keys(salt: u32, w: u32) -> Vec<String> {
    (0..2).map(|j| format!("sp.{salt}.w{w}.k{j}")).collect()
}

/// Records a commit/fence reply's frontier into `events`: one
/// `CommittedSharded` (or `Fenced`) per key plus the per-shard version
/// observations the frontier implies.
#[allow(clippy::too_many_arguments)]
fn record_frontier(
    events: &mut Vec<Event>,
    keys: &[String],
    gen: u64,
    shards: u32,
    entries: &[(u32, u64, String)],
    fence: Option<&str>,
) {
    let fmap: HashMap<u32, u64> = entries.iter().map(|(s, v, _)| (*s, *v)).collect();
    for key in keys {
        let shard = shard_of_key(key, shards).unwrap();
        let version = *fmap.get(&shard).expect("frontier covers every written shard");
        match fence {
            Some(name) => events.push(Event::Fenced {
                name: name.to_owned(),
                key: key.clone(),
                gen,
                shard,
            }),
            None => events.push(Event::CommittedSharded {
                key: key.clone(),
                gen,
                shard,
                version,
            }),
        }
    }
    if let Some(name) = fence {
        events.push(Event::FenceDone {
            name: name.to_owned(),
            frontier: entries.iter().map(|(s, v, _)| (*s, *v)).collect(),
        });
    } else {
        for (s, v, _) in entries {
            events.push(Event::ShardVersion { shard: *s, v: *v });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent commit storms against 1–8 shard masters. Whatever the
    /// shard count, batch window, write fan-out, and read tiering, the
    /// per-client histories must satisfy the cross-shard oracle.
    #[test]
    fn sharded_commit_storms_stay_consistent(
        shards in 1u32..=8,
        writers in 2u32..5,
        rounds in 1u64..4,
        window_sel in 0usize..3,
        write_fanout in 0usize..3,
        through_sel in 0usize..2,
        salt in 0u32..1000,
    ) {
        let window = [0u64, 500, 50_000][window_sel];
        let read_through_tree = through_sel == 1;
        // Masters live on ranks 0..shards; writers on the slave ranks
        // after them.
        let size = shards.max(1) + writers;
        let cfg = KvsConfig {
            shards,
            write_fanout,
            read_through_tree,
            batch_window_ns: window,
            ..KvsConfig::default()
        };
        let mut net = TestNet::new(size, 2, move |_| {
            vec![Box::new(KvsModule::with_config(cfg)) as Box<dyn CommsModule>]
        });
        let base = shards.max(1);
        let mut clients: Vec<KvsClient> =
            (0..writers).map(|w| KvsClient::new(Rank(base + w), 0)).collect();
        let mut histories: Vec<ClientHistory> = (0..writers)
            .map(|w| ClientHistory { client: format!("rank{}", base + w), events: Vec::new() })
            .collect();
        for round in 1..=rounds {
            // Stage + commit on every writer before pumping any reply, so
            // the round's commits are concurrent at the masters.
            for w in 0..writers {
                let rank = Rank(base + w);
                let c = &mut clients[w as usize];
                for key in writer_keys(salt, w) {
                    let put = c.put(&key, Value::Int(round as i64), 1);
                    net.client_send(rank, 0, put);
                    let ack = c.deliver(pump_one(&mut net, rank, 0));
                    prop_assert!(
                        matches!(ack, KvsDelivery::Reply { reply: KvsReply::Ack, .. }),
                        "{ack:?}"
                    );
                }
                let commit = c.commit(2);
                net.client_send(rank, 0, commit);
            }
            for w in 0..writers {
                let rank = Rank(base + w);
                let keys = writer_keys(salt, w);
                let m = pump_one(&mut net, rank, 0);
                match clients[w as usize].deliver(m) {
                    KvsDelivery::Reply {
                        reply: KvsReply::Frontier { shards: n, entries }, ..
                    } => {
                        prop_assert!(shards > 1, "frontier reply from unsharded session");
                        prop_assert_eq!(n, shards);
                        record_frontier(
                            &mut histories[w as usize].events,
                            &keys, round, shards, &entries, None,
                        );
                    }
                    KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                        prop_assert!(shards == 1, "bare version reply from sharded session");
                        for key in &keys {
                            histories[w as usize].events.push(Event::Committed {
                                key: key.clone(), gen: round, version,
                            });
                        }
                    }
                    other => prop_assert!(false, "commit reply {other:?}"),
                }
            }
        }
        // Read-your-writes after the storm (repeat gets also exercise the
        // slave lookup memo against per-shard roots).
        for w in 0..writers {
            let rank = Rank(base + w);
            let c = &mut clients[w as usize];
            for key in writer_keys(salt, w) {
                for tag in [3, 4] {
                    let get = c.get(&key, tag);
                    net.client_send(rank, 0, get);
                    match c.deliver(pump_one(&mut net, rank, 0)) {
                        KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                            histories[w as usize].events.push(Event::Read {
                                key: key.clone(),
                                gen: v.as_int().map(|g| g as u64),
                            });
                        }
                        other => prop_assert!(false, "get reply {other:?}"),
                    }
                }
            }
        }
        // An independent observer on a slave rank interleaves per-shard
        // version probes with reads of every key (monotonic reads and
        // per-shard monotonic versions across clients).
        let mut obs = KvsClient::new(Rank(base), 9);
        let mut oh = ClientHistory { client: "observer".into(), events: Vec::new() };
        let mut seen: HashMap<u32, u64> = HashMap::new();
        for pass in 0..2u64 {
            for s in 0..shards {
                let probe = obs.get_version_shard(s, 10 + pass);
                net.client_send(Rank(base), 9, probe);
                match obs.deliver(pump_one(&mut net, Rank(base), 9)) {
                    KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                        oh.events.push(Event::ShardVersion { shard: s, v: version });
                        let e = seen.entry(s).or_insert(0);
                        *e = (*e).max(version);
                    }
                    other => prop_assert!(false, "probe {other:?}"),
                }
            }
            for w in 0..writers {
                for key in writer_keys(salt, w) {
                    let get = obs.get(&key, 20);
                    net.client_send(Rank(base), 9, get);
                    match obs.deliver(pump_one(&mut net, Rank(base), 9)) {
                        KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                            oh.events.push(Event::Read {
                                key: key.clone(),
                                gen: v.as_int().map(|g| g as u64),
                            });
                        }
                        other => prop_assert!(false, "observer get {other:?}"),
                    }
                }
            }
        }
        // wait_version on an already-observed per-shard version must
        // answer promptly with at least that version.
        for (s, v) in &seen {
            let wait = obs.wait_version_shard(*v, *s, 30);
            net.client_send(Rank(base), 9, wait);
            match obs.deliver(pump_one(&mut net, Rank(base), 9)) {
                KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                    prop_assert!(version >= *v, "wait_version({v}) answered {version}");
                    oh.events.push(Event::ShardVersion { shard: *s, v: version });
                }
                other => prop_assert!(false, "wait_version {other:?}"),
            }
        }
        histories.push(oh);
        let violations = check(&histories);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // The shard-0 master advertises the shard count exactly when the
        // session is sharded.
        let mut probe = KvsClient::new(Rank(0), 5);
        let st = probe.stats(1);
        net.client_send(Rank(0), 5, st);
        match probe.deliver(pump_one(&mut net, Rank(0), 5)) {
            KvsDelivery::Reply { reply: KvsReply::Stats(s), .. } => {
                let advertised = s.get("shards").and_then(Value::as_uint);
                if shards > 1 {
                    prop_assert_eq!(advertised, Some(u64::from(shards)));
                } else {
                    prop_assert_eq!(advertised, None);
                }
            }
            other => prop_assert!(false, "stats {other:?}"),
        }
    }

    /// A collective fence across shards: all participants' contributions
    /// become visible atomically with one agreed per-shard frontier.
    #[test]
    fn cross_shard_fence_releases_consistent_frontier(
        shards in 1u32..=5,
        writers in 2u32..4,
        window_sel in 0usize..2,
        salt in 0u32..1000,
    ) {
        let window = [0u64, 50_000][window_sel];
        let size = shards.max(1) + writers;
        let cfg = KvsConfig { shards, batch_window_ns: window, ..KvsConfig::default() };
        let mut net = TestNet::new(size, 2, move |_| {
            vec![Box::new(KvsModule::with_config(cfg)) as Box<dyn CommsModule>]
        });
        let base = shards.max(1);
        let mut clients: Vec<KvsClient> =
            (0..writers).map(|w| KvsClient::new(Rank(base + w), 0)).collect();
        let mut histories: Vec<ClientHistory> = (0..writers)
            .map(|w| ClientHistory { client: format!("rank{}", base + w), events: Vec::new() })
            .collect();
        // Every writer stages its keys then joins the fence; no reply
        // arrives before the last participant joins.
        for w in 0..writers {
            let rank = Rank(base + w);
            let c = &mut clients[w as usize];
            for key in writer_keys(salt, w) {
                let put = c.put(&key, Value::Int(1), 1);
                net.client_send(rank, 0, put);
                let ack = c.deliver(pump_one(&mut net, rank, 0));
                prop_assert!(
                    matches!(ack, KvsDelivery::Reply { reply: KvsReply::Ack, .. }),
                    "{ack:?}"
                );
            }
            let fence = c.fence("sp.fence", u64::from(writers), 2);
            net.client_send(rank, 0, fence);
        }
        let mut release_frontier: Option<Vec<(u32, u64, String)>> = None;
        for w in 0..writers {
            let rank = Rank(base + w);
            let keys = writer_keys(salt, w);
            let m = pump_one(&mut net, rank, 0);
            match clients[w as usize].deliver(m) {
                KvsDelivery::Reply { reply: KvsReply::Frontier { shards: n, entries }, .. } => {
                    prop_assert!(shards > 1);
                    prop_assert_eq!(n, shards);
                    record_frontier(
                        &mut histories[w as usize].events,
                        &keys, 1, shards, &entries, Some("sp.fence"),
                    );
                    release_frontier.get_or_insert(entries);
                }
                KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                    prop_assert!(shards == 1);
                    for key in &keys {
                        histories[w as usize].events.push(Event::Fenced {
                            name: "sp.fence".into(), key: key.clone(), gen: 1, shard: 0,
                        });
                    }
                    histories[w as usize].events.push(Event::FenceDone {
                        name: "sp.fence".into(),
                        frontier: vec![(0, version)],
                    });
                }
                other => prop_assert!(false, "fence reply {other:?}"),
            }
        }
        // After the release every contribution is readable from any rank:
        // an observer that has seen the release must find all fenced keys.
        let mut obs = KvsClient::new(Rank(base), 9);
        let mut oh = ClientHistory { client: "observer".into(), events: Vec::new() };
        if let Some(entries) = &release_frontier {
            oh.events.push(Event::FenceDone {
                name: "sp.fence".into(),
                frontier: entries.iter().map(|(s, v, _)| (*s, *v)).collect(),
            });
        }
        for w in 0..writers {
            for key in writer_keys(salt, w) {
                let get = obs.get(&key, 20);
                net.client_send(Rank(base), 9, get);
                match obs.deliver(pump_one(&mut net, Rank(base), 9)) {
                    KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                        oh.events.push(Event::Read {
                            key: key.clone(),
                            gen: v.as_int().map(|g| g as u64),
                        });
                    }
                    other => prop_assert!(false, "observer get {other:?}"),
                }
            }
        }
        histories.push(oh);
        let violations = check(&histories);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
