//! Property tests of the §IV-B consistency contract under random
//! interleavings of writers and readers across a session.

use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_kvs::KvsModule;
use flux_value::Value;
use flux_wire::{Message, Rank};
use proptest::prelude::*;

fn net(size: u32) -> TestNet {
    TestNet::new(size, 2, |_| vec![Box::new(KvsModule::new()) as Box<dyn CommsModule>])
}

fn one_reply(net: &mut TestNet, rank: Rank, cid: u32) -> Message {
    let mut msgs = net.take_client_msgs(rank, cid);
    for _ in 0..2000 {
        if !msgs.is_empty() {
            break;
        }
        if !net.fire_next_timer() {
            break;
        }
        msgs.extend(net.take_client_msgs(rank, cid));
    }
    assert_eq!(msgs.len(), 1, "one reply expected");
    msgs.remove(0)
}

fn reply(net: &mut TestNet, c: &mut KvsClient, rank: Rank, cid: u32, msg: Message) -> KvsReply {
    net.client_send(rank, cid, msg);
    match c.deliver(one_reply(net, rank, cid)) {
        KvsDelivery::Reply { reply, .. } => reply,
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotonic reads: any interleaving of commits from random ranks and
    /// version probes from one observer yields a non-decreasing version
    /// sequence at the observer, and every commit's version is unique and
    /// increasing at the master.
    #[test]
    fn versions_monotonic_under_interleaving(
        size in 2u32..16,
        ops in prop::collection::vec((0u32..16, any::<bool>()), 1..24),
    ) {
        let mut net = net(size);
        let observer_rank = Rank(size - 1);
        let mut observer = KvsClient::new(observer_rank, 7);
        let mut writers: Vec<KvsClient> =
            (0..size).map(|r| KvsClient::new(Rank(r), 0)).collect();
        let mut commit_versions = Vec::new();
        let mut observed = Vec::new();
        for (i, (rank_seed, do_write)) in ops.into_iter().enumerate() {
            let r = rank_seed % size;
            if do_write {
                let w = &mut writers[r as usize];
                let put = w.put(&format!("mono.k{r}"), Value::Int(i as i64), 1);
                net.client_send(Rank(r), 0, put);
                let _ = one_reply(&mut net, Rank(r), 0);
                let commit = w.commit(2);
                net.client_send(Rank(r), 0, commit);
                let m = one_reply(&mut net, Rank(r), 0);
                match writers[r as usize].deliver(m) {
                    KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => {
                        commit_versions.push(version);
                    }
                    other => prop_assert!(false, "commit reply {other:?}"),
                }
            } else {
                let probe = observer.get_version(3);
                match reply(&mut net, &mut observer, observer_rank, 7, probe) {
                    KvsReply::Version { version, .. } => observed.push(version),
                    other => prop_assert!(false, "probe reply {other:?}"),
                }
            }
        }
        prop_assert!(commit_versions.windows(2).all(|w| w[0] < w[1]),
            "master versions strictly increase: {commit_versions:?}");
        prop_assert!(observed.windows(2).all(|w| w[0] <= w[1]),
            "observer never sees time go backwards: {observed:?}");
    }

    /// Read-your-writes + causal: after a writer's commit at version v,
    /// any reader that waits for v sees the write, for arbitrary
    /// writer/reader placements.
    #[test]
    fn causal_chain_any_placement(
        size in 2u32..16,
        chains in prop::collection::vec((0u32..16, 0u32..16, -500i64..500), 1..8),
    ) {
        let mut net = net(size);
        for (i, (w_seed, r_seed, val)) in chains.into_iter().enumerate() {
            let wr = Rank(w_seed % size);
            let rr = Rank(r_seed % size);
            let key = format!("causal.k{i}");
            let mut w = KvsClient::new(wr, 2);
            let put = w.put(&key, Value::Int(val), 1);
            net.client_send(wr, 2, put);
            let _ = one_reply(&mut net, wr, 2);
            let commit = w.commit(2);
            net.client_send(wr, 2, commit);
            let m = one_reply(&mut net, wr, 2);
            let version = match w.deliver(m) {
                KvsDelivery::Reply { reply: KvsReply::Version { version, .. }, .. } => version,
                other => {
                    prop_assert!(false, "{other:?}");
                    unreachable!()
                }
            };
            // The reader learns `version` out of band and waits for it.
            let mut r = KvsClient::new(rr, 3);
            let wait = r.wait_version(version, 1);
            let rep = reply(&mut net, &mut r, rr, 3, wait);
            let waited_ok = matches!(rep, KvsReply::Version { version: v, .. } if v >= version);
            prop_assert!(waited_ok, "wait_version returned too early");
            let get = r.get(&key, 2);
            let rep = reply(&mut net, &mut r, rr, 3, get);
            prop_assert_eq!(rep, KvsReply::Value(Value::Int(val)));
        }
    }

    /// Fences of random sizes with random payload redundancy complete for
    /// every participant, and afterwards all written keys resolve
    /// everywhere.
    #[test]
    fn fences_always_complete(size in 2u32..12, redundant in any::<bool>(), seed in 0u64..1000) {
        let mut net = net(size);
        let mut clients: Vec<KvsClient> =
            (0..size).map(|r| KvsClient::new(Rank(r), 4)).collect();
        for r in 0..size {
            let val = if redundant {
                Value::from("same")
            } else {
                Value::from(format!("{seed}-{r}"))
            };
            let put = clients[r as usize].put(&format!("f{seed}.k{r}"), val, 1);
            net.client_send(Rank(r), 4, put);
            let _ = one_reply(&mut net, Rank(r), 4);
            let fence = clients[r as usize].fence("pf", u64::from(size), 2);
            net.client_send(Rank(r), 4, fence);
        }
        // Collect all fence completions (pump timers).
        for r in 0..size {
            let m = one_reply(&mut net, Rank(r), 4);
            let rep = match clients[r as usize].deliver(m) {
                KvsDelivery::Reply { reply, .. } => reply,
                other => {
                    prop_assert!(false, "{other:?}");
                    unreachable!()
                }
            };
            prop_assert!(matches!(rep, KvsReply::Version { .. }), "{rep:?}");
        }
        // Every key visible from rank 0.
        let mut probe = KvsClient::new(Rank(0), 9);
        for r in 0..size {
            let get = probe.get(&format!("f{seed}.k{r}"), 3);
            let rep = reply(&mut net, &mut probe, Rank(0), 9, get);
            prop_assert!(matches!(rep, KvsReply::Value(_)), "key {r}: {rep:?}");
        }
    }
}
