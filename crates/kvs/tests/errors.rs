//! KVS protocol error paths: malformed payloads, wrong-type operations,
//! and unknown methods all produce a single, specific error response —
//! never a hang or a panic.

use flux_broker::client::ClientCore;
use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_kvs::KvsModule;
use flux_value::Value;
use flux_wire::{errnum, Message, Rank, Topic};

fn net(size: u32) -> TestNet {
    TestNet::new(size, 2, |_| vec![Box::new(KvsModule::new()) as Box<dyn CommsModule>])
}

fn rpc(net: &mut TestNet, rank: Rank, msg: Message) -> Message {
    net.client_send(rank, 0, msg);
    let mut msgs = net.take_client_msgs(rank, 0);
    for _ in 0..500 {
        if !msgs.is_empty() {
            break;
        }
        if !net.fire_next_timer() {
            break;
        }
        msgs.extend(net.take_client_msgs(rank, 0));
    }
    assert_eq!(msgs.len(), 1, "exactly one reply");
    msgs.remove(0)
}

fn req(rank: Rank, topic: &str, payload: Value) -> Message {
    ClientCore::new(rank, 0).request(Topic::new(topic).unwrap(), payload, 0)
}

#[test]
fn malformed_payloads_fail_einval() {
    let mut net = net(3);
    let cases = [
        ("kvs.put", Value::object()),                                   // no key
        ("kvs.put", Value::from_pairs([("k", Value::Int(5))])),         // non-string key
        ("kvs.put", Value::from_pairs([("k", Value::from("a..b"))])),   // invalid key
        ("kvs.get", Value::Null),                                       // no key
        ("kvs.fence", Value::from_pairs([("name", Value::from("f"))])), // no nprocs
        ("kvs.wait_version", Value::object()),                          // no version
        ("kvs.watch", Value::object()),                                 // no key
        ("kvs.load", Value::from_pairs([("id", Value::from("zz"))])),   // bad sha
        ("kvs.unwatch", Value::object()),                               // no key
    ];
    for (topic, payload) in cases {
        let resp = rpc(&mut net, Rank(2), req(Rank(2), topic, payload.clone()));
        assert_eq!(
            resp.header.errnum,
            errnum::EINVAL,
            "{topic} with {payload} must fail EINVAL, got {resp:?}"
        );
    }
}

#[test]
fn unknown_kvs_method_fails_enosys() {
    let mut net = net(3);
    let resp = rpc(&mut net, Rank(1), req(Rank(1), "kvs.frobnicate", Value::object()));
    assert_eq!(resp.header.errnum, errnum::ENOSYS);
}

#[test]
fn load_of_unknown_object_fails_enoent_at_master() {
    let mut net = net(3);
    // A valid-looking but absent SHA1.
    let absent = flux_hash::ObjectId::hash(b"never stored").to_hex();
    let resp = rpc(
        &mut net,
        Rank(2),
        req(Rank(2), "kvs.load", Value::from_pairs([("id", Value::from(absent))])),
    );
    assert_eq!(resp.header.errnum, errnum::ENOENT);
}

#[test]
fn traversal_through_a_value_fails_enotdir() {
    let mut net = net(3);
    let _ = rpc(
        &mut net,
        Rank(1),
        req(
            Rank(1),
            "kvs.put",
            Value::from_pairs([("k", Value::from("scalar")), ("v", Value::Int(1))]),
        ),
    );
    let _ = rpc(&mut net, Rank(1), req(Rank(1), "kvs.commit", Value::object()));
    let resp = rpc(
        &mut net,
        Rank(1),
        req(Rank(1), "kvs.get", Value::from_pairs([("k", Value::from("scalar.below"))])),
    );
    assert_eq!(resp.header.errnum, errnum::ENOTDIR);
}

#[test]
fn errors_do_not_poison_the_session() {
    // After a barrage of malformed requests, normal operation proceeds.
    let mut net = net(7);
    for _ in 0..20 {
        let _ = rpc(&mut net, Rank(5), req(Rank(5), "kvs.put", Value::Null));
        let _ = rpc(&mut net, Rank(5), req(Rank(5), "kvs.bogus", Value::Null));
    }
    let _ = rpc(
        &mut net,
        Rank(5),
        req(
            Rank(5),
            "kvs.put",
            Value::from_pairs([("k", Value::from("ok.key")), ("v", Value::Int(7))]),
        ),
    );
    let resp = rpc(&mut net, Rank(5), req(Rank(5), "kvs.commit", Value::object()));
    assert!(!resp.is_error());
    let resp = rpc(
        &mut net,
        Rank(6),
        req(Rank(6), "kvs.get", Value::from_pairs([("k", Value::from("ok.key"))])),
    );
    assert_eq!(resp.payload.get("v"), Some(&Value::Int(7)));
}

#[test]
fn commit_with_no_pending_puts_is_a_valid_empty_commit() {
    let mut net = net(3);
    let resp = rpc(&mut net, Rank(2), req(Rank(2), "kvs.commit", Value::object()));
    assert!(!resp.is_error());
    let v1 = resp.payload.get("version").and_then(Value::as_uint).unwrap();
    assert_eq!(v1, 1, "empty commits still advance the version");
}

#[test]
fn wrong_value_in_dirty_object_manifest_is_rejected() {
    // A kvs.push whose object manifest lies about a hash must not be
    // applied (the master verifies content addresses).
    let mut net = net(3);
    let bogus_id = flux_hash::ObjectId::hash(b"claimed").to_hex();
    let obj = flux_kvs::KvsObject::Val(Value::from("actual")).to_value();
    let push = Value::from_pairs([
        (
            "tuples",
            Value::Array(vec![Value::from_pairs([
                ("k", Value::from("forged")),
                ("s", Value::from(bogus_id.as_str())),
            ])]),
        ),
        ("objects", Value::from_pairs([(bogus_id.as_str(), obj)])),
    ]);
    let resp = rpc(&mut net, Rank(1), req(Rank(1), "kvs.push", push));
    assert_eq!(resp.header.errnum, errnum::EINVAL, "{resp:?}");
}
