//! Chaos consistency sweep: random KVS workloads under random fault
//! plans on the deterministic simulator, checked with the per-client
//! history checker (`flux_kvs::history`).
//!
//! Every experiment is reproducible from its seed:
//!
//! ```text
//! FLUX_CHAOS_SEED=<seed> cargo test -p flux-kvs --test chaos_history
//! ```
//!
//! `FLUX_CHAOS_SEEDS=<n>` widens the sweep (default 32 per variant).

use flux_rt::chaos;

fn seed_range() -> Vec<u64> {
    if let Ok(one) = std::env::var("FLUX_CHAOS_SEED") {
        let s = one.parse().expect("FLUX_CHAOS_SEED must be a u64");
        return vec![s];
    }
    let n: u64 = std::env::var("FLUX_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    (0..n).collect()
}

fn sweep(with_kill: bool) {
    for seed in seed_range() {
        let w = chaos::workload(seed, 100_000_000, with_kill);
        let report = chaos::run_sim(&w);
        let violations = chaos::check_run(&w, &report);
        assert!(
            violations.is_empty(),
            "seed {seed} (with_kill={with_kill}) violated consistency; repro with \
             `FLUX_CHAOS_SEED={seed} cargo test -p flux-kvs --test chaos_history`\n\
             plan: {}\nviolations:\n  {}",
            w.plan,
            violations.join("\n  ")
        );
        // Sanity: the sweep must actually observe traffic, or the checker
        // is vacuously satisfied.
        let recorded: usize = report.outcomes.iter().map(|o| o.op_err.len()).sum();
        assert!(
            recorded > 0,
            "seed {seed} (with_kill={with_kill}) recorded no ops at all"
        );
    }
}

#[test]
fn consistency_holds_under_random_faults() {
    sweep(false);
}

#[test]
fn consistency_holds_under_broker_kills() {
    sweep(true);
}

/// The hot-path-optimization slice: an aggressive commit-batching window
/// and the slave lookup memo, swept under fault plans that include
/// broker blackout windows. A memo serving a stale object after a root
/// switch, or a parked push surviving a blackout wrong, shows up as a
/// read-your-writes or monotonic-reads violation here.
#[test]
fn consistency_holds_with_batching_and_lookup_memo_under_blackouts() {
    let cfg = flux_kvs::KvsConfig {
        batch_window_ns: 200_000, // park pushes much longer than default
        batch_max: 4,
        lookup_cache: true,
        ..flux_kvs::KvsConfig::default()
    };
    for seed in seed_range() {
        let w = chaos::workload(seed, 100_000_000, true);
        let report = chaos::run_sim_kvs(&w, cfg);
        let violations = chaos::check_run(&w, &report);
        assert!(
            violations.is_empty(),
            "seed {seed} (batching+memo, blackout) violated consistency; repro with \
             `FLUX_CHAOS_SEED={seed} cargo test -p flux-kvs --test chaos_history`\n\
             plan: {}\nviolations:\n  {}",
            w.plan,
            violations.join("\n  ")
        );
    }
}

/// The sharded multi-master slice: 4 shard masters, scripted clients on
/// slave ranks, commits and fences spanning shards — swept with and
/// without blacking out one shard master mid-run, and checked with the
/// extended cross-shard oracle (per-shard monotonic versions, fence
/// frontier agreement, no partial fence release).
fn sharded_sweep(kill_master: bool) {
    let shards = 4u32;
    let cfg = flux_kvs::KvsConfig { shards, ..flux_kvs::KvsConfig::default() };
    for seed in seed_range() {
        let w = chaos::shard_workload(seed, shards, 100_000_000, kill_master);
        let report = chaos::run_sim_kvs(&w, cfg);
        let violations = chaos::check_run(&w, &report);
        assert!(
            violations.is_empty(),
            "seed {seed} (sharded, kill_master={kill_master}) violated the cross-shard \
             oracle; repro with `FLUX_CHAOS_SEED={seed} cargo test -p flux-kvs --test \
             chaos_history`\nplan: {}\nviolations:\n  {}",
            w.plan,
            violations.join("\n  ")
        );
        let recorded: usize = report.outcomes.iter().map(|o| o.op_err.len()).sum();
        assert!(recorded > 0, "seed {seed} (sharded) recorded no ops at all");
        // Without a blackout the base plan is lossless: the cross-shard
        // fence must release and every script must run to completion.
        if !kill_master {
            for (i, o) in report.outcomes.iter().enumerate() {
                assert!(
                    o.finished,
                    "seed {seed}: sharded lossless run left script {i} unfinished \
                     ({} of {} ops)",
                    o.op_err.len(),
                    w.scripts[i].1.len()
                );
            }
        }
    }
}

#[test]
fn consistency_holds_when_sharded() {
    sharded_sweep(false);
}

#[test]
fn consistency_holds_under_shard_master_kills() {
    sharded_sweep(true);
}

/// Loss-free seeds must complete every script: nothing in a dup/delay
/// plan may lose an op outright.
#[test]
fn lossless_plans_complete_all_scripts() {
    for seed in seed_range() {
        let w = chaos::workload(seed, 100_000_000, false);
        if w.plan.drop_ppm > 0 || !w.plan.blackouts.is_empty() || !w.plan.partitions.is_empty() {
            continue;
        }
        let report = chaos::run_sim(&w);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert!(
                o.finished,
                "seed {seed}: lossless plan {} left script {i} unfinished \
                 ({} of {} ops); repro with `FLUX_CHAOS_SEED={seed} cargo test -p \
                 flux-kvs --test chaos_history`",
                w.plan,
                o.op_err.len(),
                w.scripts[i].1.len()
            );
        }
    }
}
