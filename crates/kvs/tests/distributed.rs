//! Distributed KVS semantics over a full multi-broker session.
//!
//! These tests exercise the master/slave protocol end to end: write-back
//! puts, commit root-switching, collective fences (with the paper's
//! redundancy deduplication), fault-in through the cache chain, watches,
//! and the three §IV-B consistency properties.

use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_kvs::{KvsConfig, KvsModule};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank, Topic};

fn net(size: u32) -> TestNet {
    TestNet::new(size, 2, |_| vec![Box::new(KvsModule::new()) as Box<dyn CommsModule>])
}

/// Pumps timers until `rank`'s client `cid` has at least `want` messages
/// or nothing is left to do.
fn pump_for(net: &mut TestNet, rank: Rank, cid: u32, want: usize, sink: &mut Vec<Message>) {
    loop {
        sink.extend(net.take_client_msgs(rank, cid));
        if sink.len() >= want {
            return;
        }
        if !net.fire_next_timer() {
            sink.extend(net.take_client_msgs(rank, cid));
            return;
        }
    }
}

/// Sends one request (built by `f`) and decodes the single reply.
fn rpc<F>(net: &mut TestNet, rank: Rank, cid: u32, c: &mut KvsClient, f: F) -> KvsReply
where
    F: FnOnce(&mut KvsClient) -> Message,
{
    let msg = f(c);
    net.client_send(rank, cid, msg);
    let mut msgs = Vec::new();
    pump_for(net, rank, cid, 1, &mut msgs);
    assert_eq!(msgs.len(), 1, "expected one reply, got {msgs:?}");
    match c.deliver(msgs.into_iter().next().unwrap()) {
        KvsDelivery::Reply { reply, .. } => reply,
        other => panic!("unexpected delivery {other:?}"),
    }
}

#[test]
fn put_commit_get_across_brokers() {
    let mut net = net(7);
    let mut w = KvsClient::new(Rank(5), 0);
    assert_eq!(rpc(&mut net, Rank(5), 0, &mut w, |w| w.put("a.b.c", Value::Int(42), 1)), KvsReply::Ack);
    let commit = rpc(&mut net, Rank(5), 0, &mut w, |w| w.commit(2));
    let KvsReply::Version { version, .. } = commit else { panic!("{commit:?}") };
    assert_eq!(version, 1);

    // Another rank reads it (fault-in through the chain).
    let mut r = KvsClient::new(Rank(6), 0);
    assert_eq!(
        rpc(&mut net, Rank(6), 0, &mut r, |r| r.get("a.b.c", 3)),
        KvsReply::Value(Value::Int(42))
    );
}

#[test]
fn get_missing_key_is_enoent() {
    let mut net = net(3);
    let mut c = KvsClient::new(Rank(1), 0);
    assert_eq!(
        rpc(&mut net, Rank(1), 0, &mut c, |c| c.get("no.such.key", 1)),
        KvsReply::Err(errnum::ENOENT)
    );
}

#[test]
fn read_your_writes_at_committing_broker() {
    // The commit response applies the root locally before the caller is
    // answered: an immediate local get must see the write even though the
    // setroot event may not have arrived yet.
    let mut net = net(15);
    let mut c = KvsClient::new(Rank(11), 0);
    let _ = rpc(&mut net, Rank(11), 0, &mut c, |c| c.put("ryw.key", Value::from("mine"), 1));
    let KvsReply::Version { version, .. } =
        rpc(&mut net, Rank(11), 0, &mut c, |c| c.commit(2))
    else {
        panic!("commit failed")
    };
    assert_eq!(version, 1);
    assert_eq!(
        rpc(&mut net, Rank(11), 0, &mut c, |c| c.get("ryw.key", 3)),
        KvsReply::Value(Value::from("mine"))
    );
}

#[test]
fn causal_consistency_via_wait_version() {
    // A commits, tells B the version (out of band), B waits for it and
    // then must see A's value.
    let mut net = net(15);
    let mut a = KvsClient::new(Rank(7), 0);
    let _ = rpc(&mut net, Rank(7), 0, &mut a, |a| a.put("causal.x", Value::Int(9), 1));
    let KvsReply::Version { version, .. } = rpc(&mut net, Rank(7), 0, &mut a, |a| a.commit(2))
    else {
        panic!("commit failed")
    };

    let mut b = KvsClient::new(Rank(14), 0);
    let KvsReply::Version { version: seen, .. } =
        rpc(&mut net, Rank(14), 0, &mut b, |b| b.wait_version(version, 3))
    else {
        panic!("wait failed")
    };
    assert!(seen >= version);
    assert_eq!(
        rpc(&mut net, Rank(14), 0, &mut b, |b| b.get("causal.x", 4)),
        KvsReply::Value(Value::Int(9))
    );
}

#[test]
fn monotonic_versions_across_commits() {
    let mut net = net(7);
    let mut c = KvsClient::new(Rank(3), 0);
    let mut last = 0;
    for i in 0..5 {
        let _ = rpc(&mut net, Rank(3), 0, &mut c, |c| c.put("mono.k", Value::Int(i), 1));
        let KvsReply::Version { version, .. } = rpc(&mut net, Rank(3), 0, &mut c, |c| c.commit(2))
        else {
            panic!("commit failed")
        };
        assert!(version > last, "version must advance: {version} after {last}");
        last = version;
    }
    // get_version at a third-party rank is <= master's but never regresses.
    let mut o = KvsClient::new(Rank(6), 0);
    let KvsReply::Version { version: v1, .. } =
        rpc(&mut net, Rank(6), 0, &mut o, |o| o.get_version(9))
    else {
        panic!()
    };
    let KvsReply::Version { version: v2, .. } =
        rpc(&mut net, Rank(6), 0, &mut o, |o| o.get_version(10))
    else {
        panic!()
    };
    assert!(v2 >= v1);
}

#[test]
fn fence_collects_all_participants() {
    // One producer client on every broker; each puts a unique key then
    // fences. After the fence completes everyone sees everyone's key.
    let size = 7u32;
    let mut net = net(size);
    let mut clients: Vec<KvsClient> =
        (0..size).map(|r| KvsClient::new(Rank(r), 0)).collect();

    for r in 0..size {
        let put = clients[r as usize].put(&format!("fence.k{r}"), Value::Int(i64::from(r)), 1);
        net.client_send(Rank(r), 0, put);
    }
    // Collect put acks.
    for r in 0..size {
        let msgs = net.take_client_msgs(Rank(r), 0);
        assert_eq!(msgs.len(), 1);
    }
    // Everyone fences.
    for r in 0..size {
        let f = clients[r as usize].fence("boot", u64::from(size), 2);
        net.client_send(Rank(r), 0, f);
    }
    // Pump timers until all fences complete.
    let mut done = vec![Vec::new(); size as usize];
    for _ in 0..1000 {
        for r in 0..size {
            done[r as usize].extend(net.take_client_msgs(Rank(r), 0));
        }
        if done.iter().all(|v| !v.is_empty()) {
            break;
        }
        assert!(net.fire_next_timer(), "fence never completed: {done:?}");
    }
    for r in 0..size {
        assert_eq!(done[r as usize].len(), 1, "rank {r}");
        let reply = match clients[r as usize].deliver(done[r as usize].remove(0)) {
            KvsDelivery::Reply { reply, .. } => reply,
            other => panic!("{other:?}"),
        };
        assert!(matches!(reply, KvsReply::Version { version: 1, .. }), "{reply:?}");
    }
    // All keys visible everywhere.
    for r in 0..size {
        for k in 0..size {
            let key = format!("fence.k{k}");
            let reply =
                rpc(&mut net, Rank(r), 0, &mut clients[r as usize], |c| c.get(&key, 7));
            assert_eq!(reply, KvsReply::Value(Value::Int(i64::from(k))), "rank {r} key {k}");
        }
    }
}

#[test]
fn fence_deduplicates_redundant_values() {
    // Redundant values must collapse to ONE object at the master, while
    // unique values store one object per producer (Fig. 3's mechanism).
    let run = |redundant: bool| -> usize {
        let size = 7u32;
        let mut net = net(size);
        let mut clients: Vec<KvsClient> =
            (0..size).map(|r| KvsClient::new(Rank(r), 0)).collect();
        for r in 0..size {
            let v = if redundant {
                Value::from("same-value-everywhere")
            } else {
                Value::from(format!("value-{r}"))
            };
            let put = clients[r as usize].put(&format!("red.k{r}"), v, 1);
            net.client_send(Rank(r), 0, put);
            let _ = net.take_client_msgs(Rank(r), 0);
            let f = clients[r as usize].fence("f", u64::from(size), 2);
            net.client_send(Rank(r), 0, f);
        }
        for _ in 0..1000 {
            let done: Vec<Message> = net.take_client_msgs(Rank(0), 0);
            if !done.is_empty() {
                break;
            }
            assert!(net.fire_next_timer());
        }
        // Master cache statistics: count of resident objects.
        let mut probe = KvsClient::new(Rank(0), 1);
        let KvsReply::Stats(stats) = rpc(&mut net, Rank(0), 1, &mut probe, |probe| probe.stats(9))
        else {
            panic!("stats failed")
        };
        stats.get("entries").and_then(Value::as_int).unwrap() as usize
    };
    let unique_entries = run(false);
    let redundant_entries = run(true);
    // unique: 7 value objects; redundant: 1 value object (dirs identical).
    assert_eq!(unique_entries - redundant_entries, 6);
}

#[test]
fn fence_with_zero_nprocs_is_einval() {
    // nprocs = 0 can never be satisfied; it must fail fast, not hang.
    let mut net = net(3);
    let mut c = KvsClient::new(Rank(2), 0);
    assert_eq!(
        rpc(&mut net, Rank(2), 0, &mut c, |c| c.fence("zero", 0, 1)),
        KvsReply::Err(errnum::EINVAL)
    );
}

#[test]
fn mismatched_fence_nprocs_is_einval() {
    // Two clients on one broker disagree on the participant count: the
    // first claim stands, the contradicting one is rejected.
    let mut net = net(3);
    let mut a = KvsClient::new(Rank(1), 0);
    let f = a.fence("mm", 2, 1);
    net.client_send(Rank(1), 0, f);
    let mut b = KvsClient::new(Rank(1), 1);
    assert_eq!(
        rpc(&mut net, Rank(1), 1, &mut b, |b| b.fence("mm", 3, 1)),
        KvsReply::Err(errnum::EINVAL)
    );
}

#[test]
fn duplicate_fence_contribution_does_not_double_count() {
    // nprocs = 2 but only ONE real participant, which fences twice. The
    // duplicate is rejected with EINVAL and must NOT count: the fence
    // completes only when the second genuine participant arrives.
    let mut net = net(3);
    let mut a = KvsClient::new(Rank(1), 0);
    let first = a.fence("dup", 2, 1);
    net.client_send(Rank(1), 0, first);
    let dup = a.fence("dup", 2, 2);
    net.client_send(Rank(1), 0, dup);

    // Only the duplicate is answered (immediately, with EINVAL).
    let mut msgs = Vec::new();
    pump_for(&mut net, Rank(1), 0, 1, &mut msgs);
    assert_eq!(msgs.len(), 1, "only the duplicate may be answered: {msgs:?}");
    match a.deliver(msgs.remove(0)) {
        KvsDelivery::Reply { reply, .. } => assert_eq!(reply, KvsReply::Err(errnum::EINVAL)),
        other => panic!("{other:?}"),
    }
    // Drain pending timers: the first fence must still be parked.
    for _ in 0..100 {
        if !net.fire_next_timer() {
            break;
        }
    }
    assert!(
        net.take_client_msgs(Rank(1), 0).is_empty(),
        "fence completed with one participant missing"
    );

    // The real second participant completes it for both.
    let mut b = KvsClient::new(Rank(2), 0);
    let f = b.fence("dup", 2, 1);
    net.client_send(Rank(2), 0, f);
    let (mut am, mut bm) = (Vec::new(), Vec::new());
    pump_for(&mut net, Rank(1), 0, 1, &mut am);
    pump_for(&mut net, Rank(2), 0, 1, &mut bm);
    for (client, mut got) in [(&mut a, am), (&mut b, bm)] {
        assert_eq!(got.len(), 1);
        match client.deliver(got.remove(0)) {
            KvsDelivery::Reply { reply, .. } => {
                assert!(matches!(reply, KvsReply::Version { .. }), "{reply:?}");
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn fence_push_wrong_master_einval_fails_the_fence() {
    // A shard master that rejects a fence push with EINVAL — here a
    // rolling-restart misconfiguration: rank 1 (master of shard 1)
    // believes the store is unsharded — is a *permanent* failure.
    // Re-sending the same part at the same rank can never succeed, so
    // the fence must fail fast with EINVAL instead of spinning on the
    // heartbeat re-send pump forever.
    let sharded = KvsConfig { shards: 2, ..KvsConfig::default() };
    let unsharded = KvsConfig::default();
    let mut net = TestNet::new(6, 2, move |rank| {
        let cfg = if rank == Rank(1) { unsharded } else { sharded };
        vec![Box::new(KvsModule::with_config(cfg)) as Box<dyn CommsModule>]
    });
    // The writer sits at rank 5 (TBON path 5 → 2 → 0) so its traffic
    // never routes through the misconfigured rank; only the root
    // coordinator's rank-addressed fence push reaches rank 1.
    let mut c = KvsClient::new(Rank(5), 0);
    let key = (0..64)
        .map(|j| format!("fe.wrong.k{j}"))
        .find(|k| flux_kvs::shard::shard_of_key(k, 2) == Ok(1))
        .expect("some candidate key lands on shard 1");
    assert_eq!(
        rpc(&mut net, Rank(5), 0, &mut c, |c| c.put(&key, Value::Int(1), 1)),
        KvsReply::Ack
    );
    // One participant: the fence releases count-wise immediately and the
    // coordinator pushes the staged shard-1 part to rank 1.
    let fence = c.fence("fe.wrong", 1, 1);
    net.client_send(Rank(5), 0, fence);
    let mut reply = None;
    for _ in 0..2000 {
        if let Some(m) = net.take_client_msgs(Rank(5), 0).pop() {
            reply = Some(m);
            break;
        }
        if !net.fire_next_timer() {
            break;
        }
    }
    let m = reply.expect("fence must be answered, not retried forever");
    match c.deliver(m) {
        KvsDelivery::Reply { reply, .. } => assert_eq!(reply, KvsReply::Err(errnum::EINVAL)),
        other => panic!("unexpected delivery {other:?}"),
    }
}

#[test]
fn watch_streams_changes_to_remote_rank() {
    let mut net = net(7);
    let mut watcher = KvsClient::new(Rank(6), 0);
    let (wreq, _wid) = watcher.watch("w.key", 1);
    net.client_send(Rank(6), 0, wreq);
    // Initial snapshot: key missing -> null.
    let mut msgs = net.take_client_msgs(Rank(6), 0);
    assert_eq!(msgs.len(), 1);
    match watcher.deliver(msgs.remove(0)) {
        KvsDelivery::Reply { reply: KvsReply::WatchUpdate { key, value }, .. } => {
            assert_eq!(key, "w.key");
            assert_eq!(value, Value::Null);
        }
        other => panic!("{other:?}"),
    }
    // A writer elsewhere commits twice.
    let mut writer = KvsClient::new(Rank(3), 0);
    for (i, v) in [(1i64, "first"), (2, "second")] {
        let _ = rpc(&mut net, Rank(3), 0, &mut writer, |writer| writer.put("w.key", Value::from(v), 1));
        let KvsReply::Version { version, .. } =
            rpc(&mut net, Rank(3), 0, &mut writer, |writer| writer.commit(2))
        else {
            panic!()
        };
        assert_eq!(version as i64, i);
    }
    // The watcher sees both updates, in order.
    let mut updates = Vec::new();
    pump_for(&mut net, Rank(6), 0, 2, &mut updates);
    let texts: Vec<String> = updates
        .into_iter()
        .map(|m| match watcher.deliver(m) {
            KvsDelivery::Reply { reply: KvsReply::WatchUpdate { value, .. }, .. } => {
                value.as_str().unwrap_or("?").to_owned()
            }
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(texts, ["first", "second"]);
}

#[test]
fn directory_listing_and_eisdir() {
    let mut net = net(3);
    let mut c = KvsClient::new(Rank(2), 0);
    for (k, v) in [("d.x", 1i64), ("d.y", 2), ("d.sub.z", 3)] {
        let _ = rpc(&mut net, Rank(2), 0, &mut c, |c| c.put(k, Value::Int(v), 1));
    }
    let _ = rpc(&mut net, Rank(2), 0, &mut c, |c| c.commit(2));
    // Plain get of a directory fails with EISDIR.
    assert_eq!(rpc(&mut net, Rank(2), 0, &mut c, |c| c.get("d", 3)), KvsReply::Err(errnum::EISDIR));
    // Directory listing names all entries.
    let KvsReply::Dir(listing) = rpc(&mut net, Rank(2), 0, &mut c, |c| c.get_dir("d", 4)) else {
        panic!("dir listing failed")
    };
    let names: Vec<&String> = listing.as_object().unwrap().keys().collect();
    assert_eq!(names, ["sub", "x", "y"]);
    // get_dir of a value fails with ENOTDIR.
    assert_eq!(
        rpc(&mut net, Rank(2), 0, &mut c, |c| c.get_dir("d.x", 5)),
        KvsReply::Err(errnum::ENOTDIR)
    );
}

#[test]
fn unlink_removes_key_everywhere() {
    let mut net = net(7);
    let mut c = KvsClient::new(Rank(4), 0);
    let _ = rpc(&mut net, Rank(4), 0, &mut c, |c| c.put("u.k", Value::Int(5), 1));
    let _ = rpc(&mut net, Rank(4), 0, &mut c, |c| c.commit(2));
    let _ = rpc(&mut net, Rank(4), 0, &mut c, |c| c.unlink("u.k", 3));
    let _ = rpc(&mut net, Rank(4), 0, &mut c, |c| c.commit(4));
    let mut r = KvsClient::new(Rank(5), 0);
    assert_eq!(
        rpc(&mut net, Rank(5), 0, &mut r, |r| r.get("u.k", 5)),
        KvsReply::Err(errnum::ENOENT)
    );
}

#[test]
fn interior_caches_populate_on_read_path() {
    // A leaf read faults objects through the interior broker on its path:
    // afterwards, the interior cache holds them too (Fig. 4 mechanism).
    let mut net = net(7);
    let mut w = KvsClient::new(Rank(0), 0);
    let _ = rpc(&mut net, Rank(0), 0, &mut w, |w| w.put("deep.key", Value::from("x"), 1));
    let _ = rpc(&mut net, Rank(0), 0, &mut w, |w| w.commit(2));

    // Rank 5's path to the root passes rank 2.
    let mut probe = KvsClient::new(Rank(2), 1);
    let KvsReply::Stats(before) = rpc(&mut net, Rank(2), 1, &mut probe, |probe| probe.stats(3)) else {
        panic!()
    };
    let mut r = KvsClient::new(Rank(5), 0);
    assert_eq!(
        rpc(&mut net, Rank(5), 0, &mut r, |r| r.get("deep.key", 4)),
        KvsReply::Value(Value::from("x"))
    );
    let KvsReply::Stats(after) = rpc(&mut net, Rank(2), 1, &mut probe, |probe| probe.stats(5)) else {
        panic!()
    };
    let before_n = before.get("entries").and_then(Value::as_int).unwrap();
    let after_n = after.get("entries").and_then(Value::as_int).unwrap();
    assert!(after_n > before_n, "interior cache grew: {before_n} -> {after_n}");
}

#[test]
fn slave_cache_expires_idle_entries_on_heartbeat() {
    let mut net = TestNet::new(3, 2, |_| {
        vec![Box::new(KvsModule::with_config(KvsConfig { expiry_epochs: 2, window_ns: 1000, ..KvsConfig::default() }))
            as Box<dyn CommsModule>]
    });
    let mut c = KvsClient::new(Rank(2), 0);
    let _ = rpc(&mut net, Rank(2), 0, &mut c, |c| c.put("e.k", Value::from("data"), 1));
    let _ = rpc(&mut net, Rank(2), 0, &mut c, |c| c.commit(2));
    let _ = rpc(&mut net, Rank(2), 0, &mut c, |c| c.get("e.k", 3));
    let KvsReply::Stats(before) = rpc(&mut net, Rank(2), 0, &mut c, |c| c.stats(4)) else {
        panic!()
    };
    // Heartbeats (injected as root events) advance cache epochs.
    // The broker-config expiry (16 epochs) dominates the module config,
    // so push past it.
    for epoch in 1..=40u64 {
        net.publish_from_root(
            Topic::from_static("hb"),
            Value::from_pairs([("epoch", Value::from(epoch as i64))]),
        );
    }
    let KvsReply::Stats(after) = rpc(&mut net, Rank(2), 0, &mut c, |c| c.stats(5)) else {
        panic!()
    };
    let before_n = before.get("entries").and_then(Value::as_int).unwrap();
    let after_n = after.get("entries").and_then(Value::as_int).unwrap();
    assert!(after_n < before_n, "cache shrank: {before_n} -> {after_n}");
    assert!(after.get("expired").and_then(Value::as_int).unwrap() > 0);
    // Expired data faults back in on demand.
    assert_eq!(
        rpc(&mut net, Rank(2), 0, &mut c, |c| c.get("e.k", 6)),
        KvsReply::Value(Value::from("data"))
    );
}

#[test]
fn concurrent_commits_from_many_ranks_all_land() {
    let size = 15u32;
    let mut net = net(size);
    let mut clients: Vec<KvsClient> =
        (0..size).map(|r| KvsClient::new(Rank(r), 0)).collect();
    // Everyone puts and commits without waiting for each other.
    for r in 0..size {
        let put = clients[r as usize].put(&format!("cc.k{r}"), Value::Int(i64::from(r)), 1);
        net.client_send(Rank(r), 0, put);
        let commit = clients[r as usize].commit(2);
        net.client_send(Rank(r), 0, commit);
    }
    // Concurrent pushes park in the master's batch window; pump timers
    // until every rank has its put ack + commit reply.
    for r in 0..size {
        let mut msgs = Vec::new();
        pump_for(&mut net, Rank(r), 0, 2, &mut msgs);
        assert_eq!(msgs.len(), 2, "rank {r}: put ack + commit reply");
    }
    // All keys visible at an arbitrary rank.
    let mut reader = KvsClient::new(Rank(9), 1);
    for k in 0..size {
        let key = format!("cc.k{k}");
        assert_eq!(
            rpc(&mut net, Rank(9), 1, &mut reader, |c| c.get(&key, 3)),
            KvsReply::Value(Value::Int(i64::from(k)))
        );
    }
}

#[test]
fn concurrent_pushes_coalesce_into_one_apply() {
    let size = 9u32;
    let mut net = net(size);
    let mut clients: Vec<KvsClient> =
        (0..size).map(|r| KvsClient::new(Rank(r), 0)).collect();
    // Ranks 1..size commit concurrently (rank 0's commits are local to the
    // master and never travel as kvs.push).
    for r in 1..size {
        let put = clients[r as usize].put(&format!("co.k{r}"), Value::Int(i64::from(r)), 1);
        net.client_send(Rank(r), 0, put);
        let commit = clients[r as usize].commit(2);
        net.client_send(Rank(r), 0, commit);
    }
    for r in 1..size {
        let mut msgs = Vec::new();
        pump_for(&mut net, Rank(r), 0, 2, &mut msgs);
        assert_eq!(msgs.len(), 2, "rank {r}: put ack + commit reply");
    }
    // All eight pushes parked inside one batch window: one hash-tree
    // walk, one version bump, one setroot broadcast.
    let mut m = KvsClient::new(Rank(0), 0);
    let KvsReply::Stats(s) = rpc(&mut net, Rank(0), 0, &mut m, |c| c.stats(1)) else {
        panic!()
    };
    assert_eq!(s.get("pushes_batched").and_then(Value::as_int).unwrap(), 8);
    let commits = s.get("commits").and_then(Value::as_int).unwrap();
    assert!(commits < 8, "coalesced: {commits} applies for 8 pushes");
    assert_eq!(s.get("version").and_then(Value::as_int).unwrap(), commits);
    // Coalescing loses no data.
    let mut reader = KvsClient::new(Rank(5), 1);
    for k in 1..size {
        let key = format!("co.k{k}");
        assert_eq!(
            rpc(&mut net, Rank(5), 1, &mut reader, |c| c.get(&key, 3)),
            KvsReply::Value(Value::Int(i64::from(k)))
        );
    }
}

#[test]
fn batch_max_flushes_without_waiting_for_the_window_timer() {
    let mut net = TestNet::new(5, 2, |_| {
        vec![Box::new(KvsModule::with_config(KvsConfig {
            batch_max: 2,
            ..KvsConfig::default()
        })) as Box<dyn CommsModule>]
    });
    let mut a = KvsClient::new(Rank(1), 0);
    let mut b = KvsClient::new(Rank(2), 0);
    net.client_send(Rank(1), 0, a.put("bm.a", Value::Int(1), 1));
    net.client_send(Rank(1), 0, a.commit(2));
    net.client_send(Rank(2), 0, b.put("bm.b", Value::Int(2), 1));
    net.client_send(Rank(2), 0, b.commit(2));
    // The second push hit batch_max: both commit replies must already be
    // delivered with no timer fired.
    assert_eq!(net.take_client_msgs(Rank(1), 0).len(), 2, "rank 1 done sans timer");
    assert_eq!(net.take_client_msgs(Rank(2), 0).len(), 2, "rank 2 done sans timer");
}

#[test]
fn lookup_memo_hits_and_invalidates_on_root_switch() {
    let mut net = net(5);
    let mut w = KvsClient::new(Rank(3), 0);
    let _ = rpc(&mut net, Rank(3), 0, &mut w, |c| c.put("lm.k", Value::Int(1), 1));
    let _ = rpc(&mut net, Rank(3), 0, &mut w, |c| c.commit(2));
    let mut r = KvsClient::new(Rank(4), 0);
    // First get walks (and faults in); second is a pure memo hit.
    assert_eq!(
        rpc(&mut net, Rank(4), 0, &mut r, |c| c.get("lm.k", 3)),
        KvsReply::Value(Value::Int(1))
    );
    assert_eq!(
        rpc(&mut net, Rank(4), 0, &mut r, |c| c.get("lm.k", 4)),
        KvsReply::Value(Value::Int(1))
    );
    let KvsReply::Stats(s) = rpc(&mut net, Rank(4), 0, &mut r, |c| c.stats(5)) else {
        panic!()
    };
    assert!(s.get("lookup_hits").and_then(Value::as_int).unwrap() >= 1, "memo served a get");
    // A new commit switches the root: the memo must not serve the stale
    // object (apply_root clears it before waking anyone).
    let _ = rpc(&mut net, Rank(3), 0, &mut w, |c| c.put("lm.k", Value::Int(2), 1));
    let _ = rpc(&mut net, Rank(3), 0, &mut w, |c| c.commit(6));
    assert_eq!(
        rpc(&mut net, Rank(4), 0, &mut r, |c| c.get("lm.k", 7)),
        KvsReply::Value(Value::Int(2)),
        "root switch invalidated the memo"
    );
}

#[test]
fn watch_on_directory_fires_for_nested_changes() {
    // Paper §IV-B: "Due to our hash-tree organization, a watched directory
    // changes if keys under it at any path depth change."
    let mut net = net(7);
    let mut watcher = KvsClient::new(Rank(4), 0);
    let (wreq, _wid) = watcher.watch("app", 1);
    net.client_send(Rank(4), 0, wreq);
    let mut snap = net.take_client_msgs(Rank(4), 0);
    assert_eq!(snap.len(), 1, "initial snapshot");
    match watcher.deliver(snap.remove(0)) {
        KvsDelivery::Reply { reply: KvsReply::WatchUpdate { value, .. }, .. } => {
            assert_eq!(value, Value::Null, "directory does not exist yet");
        }
        other => panic!("{other:?}"),
    }
    // A writer creates a deeply nested key under the watched directory.
    let mut writer = KvsClient::new(Rank(2), 0);
    let _ = rpc(&mut net, Rank(2), 0, &mut writer, |w| {
        w.put("app.cfg.deep.leaf", Value::Int(1), 1)
    });
    let _ = rpc(&mut net, Rank(2), 0, &mut writer, |w| w.commit(2));
    let mut upd = Vec::new();
    pump_for(&mut net, Rank(4), 0, 1, &mut upd);
    assert_eq!(upd.len(), 1, "nested change fires the directory watch");
    let first_listing = match watcher.deliver(upd.remove(0)) {
        KvsDelivery::Reply { reply: KvsReply::WatchUpdate { value, .. }, .. } => value,
        other => panic!("{other:?}"),
    };
    assert!(first_listing.get("cfg").is_some(), "{first_listing}");
    // Changing the nested value changes the cascading hashes and fires
    // again with a different listing.
    let _ = rpc(&mut net, Rank(2), 0, &mut writer, |w| {
        w.put("app.cfg.deep.leaf", Value::Int(2), 3)
    });
    let _ = rpc(&mut net, Rank(2), 0, &mut writer, |w| w.commit(4));
    let mut upd = Vec::new();
    pump_for(&mut net, Rank(4), 0, 1, &mut upd);
    assert_eq!(upd.len(), 1);
    let second_listing = match watcher.deliver(upd.remove(0)) {
        KvsDelivery::Reply { reply: KvsReply::WatchUpdate { value, .. }, .. } => value,
        other => panic!("{other:?}"),
    };
    assert_ne!(second_listing, first_listing, "hashes cascade upward");
}
