//! Property tests over the instance hierarchy: arbitrary interleavings of
//! submissions, time advances, child spawning, and elastic changes never
//! violate the three hierarchy rules, and draining completes every
//! feasible job.

use flux_core::{Fcfs, GrowError, Instance, InstanceConfig, JobSpec, JobState};
use proptest::prelude::*;

/// One random framework action.
#[derive(Debug, Clone)]
enum Action {
    Submit { nodes: u32, walltime: u64 },
    SubmitToChild { child: usize, nodes: u32, walltime: u64 },
    Advance { dt: u64 },
    SpawnChild { nodes: u32 },
    Grow { child: usize, nodes: u32 },
    Shrink { child: usize, nodes: u32 },
    CapPower { watts: u64 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..6, 1u64..500).prop_map(|(nodes, walltime)| Action::Submit { nodes, walltime }),
        (0usize..4, 1u32..4, 1u64..500)
            .prop_map(|(child, nodes, walltime)| Action::SubmitToChild { child, nodes, walltime }),
        (1u64..1000).prop_map(|dt| Action::Advance { dt }),
        (1u32..6).prop_map(|nodes| Action::SpawnChild { nodes }),
        (0usize..4, 1u32..4).prop_map(|(child, nodes)| Action::Grow { child, nodes }),
        (0usize..4, 1u32..4).prop_map(|(child, nodes)| Action::Shrink { child, nodes }),
        (500u64..20_000).prop_map(|watts| Action::CapPower { watts }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants hold under arbitrary action sequences.
    #[test]
    fn hierarchy_invariants_hold(actions in prop::collection::vec(arb_action(), 0..40)) {
        let mut root = Instance::root(
            InstanceConfig::new("prop-root", 16).with_power(16 * 500),
            Box::new(Fcfs),
        );
        for a in actions {
            match a {
                Action::Submit { nodes, walltime } => {
                    // Keep jobs feasible for the 16-node grant.
                    root.submit(JobSpec::rigid("j", nodes.min(16), walltime));
                }
                Action::SubmitToChild { child, nodes, walltime } => {
                    let ids = root.child_ids();
                    if let Some(&id) = ids.get(child % ids.len().max(1)) {
                        let c = root.child_mut(id).expect("listed child exists");
                        let n = nodes.min(c.grant_nodes().max(1));
                        if n <= c.grant_nodes() {
                            c.submit(JobSpec::rigid("cj", n, walltime));
                        }
                    }
                }
                Action::Advance { dt } => {
                    let to = root.now_ns() + dt;
                    root.advance(to);
                }
                Action::SpawnChild { nodes } => {
                    let _ = root.spawn_child(
                        InstanceConfig::new("c", nodes),
                        Box::new(Fcfs),
                    );
                }
                Action::Grow { child, nodes } => {
                    let ids = root.child_ids();
                    if let Some(&id) = ids.get(child % ids.len().max(1)) {
                        let r = root.request_grow(id, nodes, u64::from(nodes) * 100);
                        prop_assert!(matches!(
                            r,
                            Ok(()) | Err(GrowError::Insufficient) | Err(GrowError::PolicyDenied)
                        ));
                    }
                }
                Action::Shrink { child, nodes } => {
                    let ids = root.child_ids();
                    if let Some(&id) = ids.get(child % ids.len().max(1)) {
                        let _ = root.shrink_child(id, nodes, 0);
                    }
                }
                Action::CapPower { watts } => root.cap_power(watts),
            }
            root.check_invariants();
        }
    }

    /// After lifting any power caps, draining finishes every submitted job
    /// exactly once, with start >= submit and end = start + walltime.
    #[test]
    fn drain_completes_everything(jobs in prop::collection::vec((1u32..8, 1u64..300), 1..30),
                                  advances in prop::collection::vec(1u64..200, 0..10)) {
        let mut root = Instance::root(
            InstanceConfig::new("drain-root", 8).with_power(u64::MAX / 2),
            Box::new(Fcfs),
        );
        let mut expected = Vec::new();
        let mut adv = advances.into_iter();
        for (nodes, walltime) in jobs {
            expected.push(root.submit(JobSpec::rigid("d", nodes, walltime)));
            if let Some(dt) = adv.next() {
                let to = root.now_ns() + dt;
                root.advance(to);
            }
        }
        root.drain();
        root.check_invariants();
        let done: Vec<_> = root
            .history()
            .iter()
            .filter(|e| e.state == JobState::Complete)
            .collect();
        prop_assert_eq!(done.len(), expected.len());
        for e in done {
            let start = e.start_ns.expect("completed jobs started");
            let end = e.end_ns.expect("completed jobs ended");
            prop_assert!(start >= e.submit_ns);
            prop_assert_eq!(end, start + e.spec.walltime_ns);
        }
    }

    /// FCFS preserves arrival order of start times for same-size jobs.
    #[test]
    fn fcfs_fairness(walltimes in prop::collection::vec(1u64..100, 2..20)) {
        let mut root = Instance::root(InstanceConfig::new("fifo", 1), Box::new(Fcfs));
        for w in &walltimes {
            root.submit(JobSpec::rigid("f", 1, *w).with_power(0));
        }
        root.drain();
        let mut events: Vec<_> = root.history().to_vec();
        events.sort_by_key(|e| e.id.0);
        let starts: Vec<u64> = events.iter().map(|e| e.start_ns.unwrap()).collect();
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");
    }
}
