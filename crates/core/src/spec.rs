//! Declarative resource specifications.
//!
//! The production Flux framework grew a resource description language
//! (RDL) for exactly the need §III states: "a generalized resource model
//! that is extensible and covers any kind of resource and its
//! relationships". This module is that layer for flux-rs, using the same
//! JSON values the rest of the system speaks:
//!
//! ```json
//! {
//!   "kind": "center", "name": "llnl",
//!   "children": [
//!     { "kind": "power", "name": "site", "capacity": 2000000 },
//!     { "kind": "filesystem", "name": "lustre", "capacity": 500000 },
//!     { "kind": "cluster", "name": "zin",
//!       "racks": 4, "nodes_per_rack": 16, "rack_power_w": 20000 },
//!     { "kind": "custom:burst-buffer", "name": "bb", "capacity": 800,
//!       "count": 2 }
//!   ]
//! }
//! ```
//!
//! Two conveniences beyond raw vertices:
//!
//! * a `cluster` with `racks`/`nodes_per_rack` expands to the full
//!   rack → node → socket → core shape (the testbed layout);
//! * any child with `"count": k` is replicated `k` times with an index
//!   suffix on its name.

use crate::resource::{ResourceId, ResourceKind, ResourcePool};
use flux_value::Value;
use std::fmt;

/// Why a spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A node was not a JSON object.
    NotAnObject,
    /// A node was missing its `kind`.
    MissingKind,
    /// An unknown `kind` string (and not `custom:*`).
    UnknownKind(String),
    /// A field had the wrong type.
    BadField(&'static str),
    /// `count` was zero.
    ZeroCount,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NotAnObject => write!(f, "resource spec node must be an object"),
            SpecError::MissingKind => write!(f, "resource spec node is missing \"kind\""),
            SpecError::UnknownKind(k) => write!(f, "unknown resource kind {k:?}"),
            SpecError::BadField(name) => write!(f, "field {name:?} has the wrong type"),
            SpecError::ZeroCount => write!(f, "\"count\" must be at least 1"),
        }
    }
}

impl std::error::Error for SpecError {}

fn kind_of(s: &str) -> Result<ResourceKind, SpecError> {
    Ok(match s {
        "center" => ResourceKind::Center,
        "cluster" => ResourceKind::Cluster,
        "rack" => ResourceKind::Rack,
        "node" => ResourceKind::Node,
        "socket" => ResourceKind::Socket,
        "core" => ResourceKind::Core,
        "memory" => ResourceKind::Memory,
        "power" => ResourceKind::Power,
        "filesystem" => ResourceKind::Filesystem,
        "bandwidth" => ResourceKind::Bandwidth,
        "license" => ResourceKind::License,
        other => match other.strip_prefix("custom:") {
            Some(name) if !name.is_empty() => ResourceKind::Custom(name.to_owned()),
            _ => return Err(SpecError::UnknownKind(other.to_owned())),
        },
    })
}

fn field_u64(v: &Value, name: &'static str, default: u64) -> Result<u64, SpecError> {
    match v.get(name) {
        None => Ok(default),
        Some(x) => x.as_uint().ok_or(SpecError::BadField(name)),
    }
}

fn field_str<'a>(v: &'a Value, name: &'static str) -> Result<Option<&'a str>, SpecError> {
    match v.get(name) {
        None => Ok(None),
        Some(x) => x.as_str().map(Some).ok_or(SpecError::BadField(name)),
    }
}

impl ResourcePool {
    /// Parses a JSON resource spec into this pool, returning the id of
    /// the spec's root vertex.
    pub fn add_spec(&mut self, spec: &Value, parent: Option<ResourceId>) -> Result<ResourceId, SpecError> {
        if spec.as_object().is_none() {
            return Err(SpecError::NotAnObject);
        }
        let kind_str = field_str(spec, "kind")?.ok_or(SpecError::MissingKind)?.to_owned();
        let kind = kind_of(&kind_str)?;
        let name = field_str(spec, "name")?.unwrap_or(&kind_str).to_owned();
        let capacity = field_u64(spec, "capacity", 1)?;

        // Cluster shorthand: expand the full testbed shape.
        if kind == ResourceKind::Cluster && spec.get("racks").is_some() {
            let racks = field_u64(spec, "racks", 1)? as u32;
            let npr = field_u64(spec, "nodes_per_rack", 1)? as u32;
            let rack_power = field_u64(spec, "rack_power_w", 20_000)?;
            let id = if let Some(p) = parent {
                // build_cluster creates roots; inline the same shape
                // under the given parent.
                let cluster = self.add(ResourceKind::Cluster, name.clone(), 0, Some(p));
                self.expand_cluster(cluster, &name, racks, npr, rack_power, spec)?;
                cluster
            } else {
                let cluster = self.add(ResourceKind::Cluster, name.clone(), 0, None);
                self.expand_cluster(cluster, &name, racks, npr, rack_power, spec)?;
                cluster
            };
            return Ok(id);
        }

        let id = self.add(kind, name.clone(), capacity, parent);
        if let Some(children) = spec.get("children") {
            let arr = children.as_array().ok_or(SpecError::BadField("children"))?;
            for child in arr {
                let count = field_u64(child, "count", 1)?;
                if count == 0 {
                    return Err(SpecError::ZeroCount);
                }
                if count == 1 {
                    self.add_spec(child, Some(id))?;
                } else {
                    for i in 0..count {
                        // Replicate with an indexed name.
                        let mut c = child.clone();
                        let base = field_str(&c, "name")?
                            .map(str::to_owned)
                            .unwrap_or_else(|| "r".to_owned());
                        c.insert("name", Value::from(format!("{base}{i}")));
                        c.insert("count", Value::Int(1));
                        self.add_spec(&c, Some(id))?;
                    }
                }
            }
        }
        Ok(id)
    }

    fn expand_cluster(
        &mut self,
        cluster: ResourceId,
        name: &str,
        racks: u32,
        nodes_per_rack: u32,
        rack_power_w: u64,
        spec: &Value,
    ) -> Result<(), SpecError> {
        let cores = field_u64(spec, "cores", 16)? as u32;
        let mem_gb = field_u64(spec, "mem_gb", 32)?;
        for r in 0..racks {
            let rack = self.add(ResourceKind::Rack, format!("{name}-rack{r}"), 0, Some(cluster));
            self.add(ResourceKind::Power, format!("{name}-rack{r}-pdu"), rack_power_w, Some(rack));
            for n in 0..nodes_per_rack {
                let node = self.add(
                    ResourceKind::Node,
                    format!("{name}{}", r * nodes_per_rack + n),
                    1,
                    Some(rack),
                );
                self.add(ResourceKind::Memory, "dram", mem_gb, Some(node));
                let sockets = 2u32;
                for s in 0..sockets {
                    let socket = self.add(ResourceKind::Socket, format!("s{s}"), 1, Some(node));
                    for c in 0..cores / sockets {
                        self.add(ResourceKind::Core, format!("c{c}"), 1, Some(socket));
                    }
                }
            }
        }
        Ok(())
    }

    /// Parses a JSON-text resource spec into a fresh pool.
    pub fn from_spec_text(text: &str) -> Result<(ResourcePool, ResourceId), SpecError> {
        let v = Value::parse(text).map_err(|_| SpecError::NotAnObject)?;
        let mut pool = ResourcePool::new();
        let root = pool.add_spec(&v, None)?;
        Ok((pool, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_center_spec_parses() {
        let text = r#"{
            "kind": "center", "name": "llnl",
            "children": [
                { "kind": "power", "name": "site", "capacity": 2000000 },
                { "kind": "filesystem", "name": "lustre", "capacity": 500000 },
                { "kind": "cluster", "name": "zin",
                  "racks": 2, "nodes_per_rack": 4, "rack_power_w": 20000 },
                { "kind": "custom:burst-buffer", "name": "bb", "capacity": 800,
                  "count": 2 }
            ]
        }"#;
        let (pool, root) = ResourcePool::from_spec_text(text).unwrap();
        assert_eq!(pool.get(root).kind, ResourceKind::Center);
        assert_eq!(pool.find_kind(root, &ResourceKind::Node).len(), 8);
        assert_eq!(pool.find_kind(root, &ResourceKind::Core).len(), 8 * 16);
        assert_eq!(
            pool.total_capacity(root, &ResourceKind::Power),
            2_000_000 + 2 * 20_000
        );
        let bb = ResourceKind::Custom("burst-buffer".into());
        assert_eq!(pool.total_capacity(root, &bb), 1600);
        // Replicated names are indexed.
        let bbs = pool.find_kind(root, &bb);
        let names: Vec<&str> = bbs.iter().map(|&id| pool.get(id).name.as_str()).collect();
        assert_eq!(names, ["bb0", "bb1"]);
    }

    #[test]
    fn explicit_tree_without_shorthand() {
        let text = r#"{
            "kind": "rack", "name": "r0",
            "children": [
                { "kind": "node", "name": "n0", "children": [
                    { "kind": "core", "name": "c", "count": 4 }
                ]}
            ]
        }"#;
        let (pool, root) = ResourcePool::from_spec_text(text).unwrap();
        assert_eq!(pool.find_kind(root, &ResourceKind::Core).len(), 4);
    }

    #[test]
    fn custom_core_and_memory_sizes() {
        let text = r#"{ "kind": "cluster", "name": "fat",
                        "racks": 1, "nodes_per_rack": 2,
                        "cores": 32, "mem_gb": 128 }"#;
        let (pool, root) = ResourcePool::from_spec_text(text).unwrap();
        assert_eq!(pool.find_kind(root, &ResourceKind::Core).len(), 64);
        assert_eq!(pool.total_capacity(root, &ResourceKind::Memory), 256);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            ResourcePool::from_spec_text("[1]").unwrap_err(),
            SpecError::NotAnObject
        );
        assert_eq!(
            ResourcePool::from_spec_text(r#"{"kind": "starship"}"#).unwrap_err(),
            SpecError::UnknownKind("starship".into())
        );
        assert_eq!(
            ResourcePool::from_spec_text(r#"{"kind": "node", "capacity": "lots"}"#)
                .unwrap_err(),
            SpecError::BadField("capacity")
        );
        assert_eq!(
            ResourcePool::from_spec_text(
                r#"{"kind": "rack", "children": [{"kind": "node", "count": 0}]}"#
            )
            .unwrap_err(),
            SpecError::ZeroCount
        );
        assert_eq!(
            ResourcePool::from_spec_text(r#"{"kind": "custom:"}"#).unwrap_err(),
            SpecError::UnknownKind("custom:".into())
        );
        assert_eq!(ResourcePool::from_spec_text("not json").unwrap_err(), SpecError::NotAnObject);
    }

    #[test]
    fn spec_composes_with_builders() {
        // A spec'd cluster can be grafted under a built center.
        let mut pool = ResourcePool::new();
        let center = pool.add(ResourceKind::Center, "c", 0, None);
        let spec = Value::parse(
            r#"{ "kind": "cluster", "name": "extra", "racks": 1, "nodes_per_rack": 2 }"#,
        )
        .unwrap();
        let cluster = pool.add_spec(&spec, Some(center)).unwrap();
        assert!(pool.is_ancestor(center, cluster));
        assert_eq!(pool.find_kind(center, &ResourceKind::Node).len(), 2);
    }
}
