//! Runtime lock-ordering enforcement, the dynamic half of the
//! deadlock-freedom story.
//!
//! The static half is flux-lint's cross-crate lock-order graph (DESIGN
//! §13): every `Mutex` acquisition site is collected at lint time and
//! the acquisition graph must be acyclic. That analysis sees names, not
//! executions, so this module adds the complementary runtime check: an
//! [`OrderedMutex`] carries a numeric *level*, every thread tracks the
//! stack of levels it currently holds, and (in debug builds) acquiring
//! a lock at or below the level of one already held panics immediately
//! — turning a would-be deadlock into a deterministic test failure at
//! the exact inversion site. Release builds skip the bookkeeping
//! entirely apart from the thread-local stack push/pop.
//!
//! Levels are assigned per lock at construction; unrelated subsystems
//! should space their levels out (gaps of 100) so new locks can slot in
//! between without renumbering.

use std::cell::RefCell;
use std::sync::{Mutex, MutexGuard, PoisonError};

thread_local! {
    /// Stack of `(level, name)` for locks the current thread holds.
    static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// A [`Mutex`] with a name and an ordering level.
///
/// Locks must be acquired in strictly increasing level order within a
/// thread. Poisoning is absorbed (the protected data's invariants are
/// the caller's concern; a panicked writer does not make the data
/// unreachable), so [`lock`](OrderedMutex::lock) never returns an
/// error.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    name: &'static str,
    level: u32,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex at `level` named `name` (used only in
    /// inversion diagnostics).
    pub fn new(name: &'static str, level: u32, value: T) -> OrderedMutex<T> {
        OrderedMutex { name, level, inner: Mutex::new(value) }
    }

    /// The lock's ordering level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, enforcing level order in debug builds.
    ///
    /// # Panics
    ///
    /// In debug builds, if the calling thread already holds a lock at a
    /// level greater than or equal to this one — that order, executed
    /// concurrently with the reverse order, is a deadlock.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            if let Some(&(top_level, top_name)) = held.borrow().last() {
                assert!(
                    self.level > top_level,
                    "lock-order inversion: acquiring `{}` (level {}) while holding `{}` \
                     (level {}); levels must strictly increase",
                    self.name,
                    self.level,
                    top_name,
                    top_level,
                );
            }
        });
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        HELD.with(|held| held.borrow_mut().push((self.level, self.name)));
        OrderedGuard { guard: Some(guard) }
    }
}

/// Guard returned by [`OrderedMutex::lock`]; pops the thread's held
/// stack on drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock before editing the thread-local so a
        // (hypothetical) panic in the bookkeeping can't hold the mutex.
        drop(self.guard.take());
        HELD.with(|held| {
            held.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_order_is_fine() {
        let a = OrderedMutex::new("a", 100, 1u32);
        let b = OrderedMutex::new("b", 200, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn release_resets_the_stack() {
        let a = OrderedMutex::new("a", 100, ());
        let b = OrderedMutex::new("b", 200, ());
        {
            let _gb = b.lock();
        }
        // b was released, so taking a (lower level) afterwards is fine.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order inversion"))]
    fn inversion_panics_in_debug() {
        let a = OrderedMutex::new("a", 100, ());
        let b = OrderedMutex::new("b", 200, ());
        let _gb = b.lock();
        let _ga = a.lock(); // 100 <= 200: inversion
        // In release builds the check compiles out and this test only
        // asserts that both locks can be taken.
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order inversion"))]
    fn same_level_is_an_inversion() {
        let a = OrderedMutex::new("a", 100, ());
        let b = OrderedMutex::new("b", 100, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn poisoning_is_absorbed() {
        let m = std::sync::Arc::new(OrderedMutex::new("p", 100, 7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "data stays reachable after a poisoning panic");
    }
}
