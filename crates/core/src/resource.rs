//! The generalized resource model.
//!
//! Paper §III: *"Flux introduces a generalized resource model that is
//! extensible and covers any kind of resource and its relationships."*
//! Resources form a forest: containment edges (a rack contains nodes, a
//! node contains sockets and memory) with a typed kind and a scalar
//! capacity in kind-specific units (cores, GiB, watts, MB/s, seats).

use std::collections::VecDeque;
use std::fmt;

/// Identifies a resource within one [`ResourcePool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub u32);

/// The kind of a resource vertex.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ResourceKind {
    /// A whole computing center.
    Center,
    /// One cluster.
    Cluster,
    /// One rack.
    Rack,
    /// One compute node.
    Node,
    /// A CPU socket.
    Socket,
    /// A CPU core.
    Core,
    /// Memory, capacity in GiB.
    Memory,
    /// Electrical power, capacity in watts.
    Power,
    /// A (shared) filesystem, capacity in MB/s of aggregate bandwidth.
    Filesystem,
    /// Network bandwidth, MB/s.
    Bandwidth,
    /// Software license seats.
    License,
    /// Anything else — the model is extensible by construction.
    Custom(String),
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Custom(s) => write!(f, "custom:{s}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// One resource vertex.
#[derive(Clone, Debug)]
pub struct Resource {
    /// Identity within the pool.
    pub id: ResourceId,
    /// Typed kind.
    pub kind: ResourceKind,
    /// Human-readable name (`"cab42"`, `"rack3"`).
    pub name: String,
    /// Capacity in kind-specific units.
    pub capacity: u64,
    /// Containment parent.
    pub parent: Option<ResourceId>,
    children: Vec<ResourceId>,
}

/// A resource graph (forest, usually a single tree rooted at a center or
/// cluster).
#[derive(Clone, Debug, Default)]
pub struct ResourcePool {
    resources: Vec<Resource>,
}

impl ResourcePool {
    /// An empty pool.
    pub fn new() -> ResourcePool {
        ResourcePool::default()
    }

    /// Adds a resource; `parent = None` makes it a root.
    ///
    /// # Panics
    /// Panics if `parent` does not exist.
    pub fn add(
        &mut self,
        kind: ResourceKind,
        name: impl Into<String>,
        capacity: u64,
        parent: Option<ResourceId>,
    ) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        if let Some(p) = parent {
            self.resources
                .get_mut(p.0 as usize)
                .unwrap_or_else(|| panic!("unknown parent {p:?}"))
                .children
                .push(id);
        }
        self.resources.push(Resource {
            id,
            kind,
            name: name.into(),
            capacity,
            parent,
            children: Vec::new(),
        });
        id
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Borrow a resource.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn get(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Direct children of `id`.
    pub fn children(&self, id: ResourceId) -> &[ResourceId] {
        &self.get(id).children
    }

    /// All resources, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter()
    }

    /// BFS over the subtree rooted at `id`, inclusive.
    pub fn subtree(&self, id: ResourceId) -> Vec<ResourceId> {
        let mut out = Vec::new();
        let mut q = VecDeque::from([id]);
        while let Some(cur) = q.pop_front() {
            out.push(cur);
            q.extend(self.children(cur).iter().copied());
        }
        out
    }

    /// All ids of a given kind under `root` (inclusive).
    pub fn find_kind(&self, root: ResourceId, kind: &ResourceKind) -> Vec<ResourceId> {
        self.subtree(root)
            .into_iter()
            .filter(|&r| &self.get(r).kind == kind)
            .collect()
    }

    /// Total capacity of all `kind` resources under `root`.
    pub fn total_capacity(&self, root: ResourceId, kind: &ResourceKind) -> u64 {
        self.find_kind(root, kind).iter().map(|&r| self.get(r).capacity).sum()
    }

    /// True if `ancestor` is a (non-strict) containment ancestor of `id`.
    pub fn is_ancestor(&self, ancestor: ResourceId, id: ResourceId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.get(c).parent;
        }
        false
    }

    /// Builds a standard cluster shape matching the paper's testbed: each
    /// node has 2 sockets × 8 cores and 32 GiB, and racks carry a power
    /// envelope. Returns (cluster id, node ids).
    pub fn build_cluster(
        &mut self,
        name: &str,
        racks: u32,
        nodes_per_rack: u32,
        rack_power_w: u64,
    ) -> (ResourceId, Vec<ResourceId>) {
        let cluster = self.add(ResourceKind::Cluster, name, 0, None);
        let mut nodes = Vec::new();
        for r in 0..racks {
            let rack = self.add(ResourceKind::Rack, format!("{name}-rack{r}"), 0, Some(cluster));
            self.add(ResourceKind::Power, format!("{name}-rack{r}-pdu"), rack_power_w, Some(rack));
            for n in 0..nodes_per_rack {
                let node = self.add(
                    ResourceKind::Node,
                    format!("{name}{}", r * nodes_per_rack + n),
                    1,
                    Some(rack),
                );
                self.add(ResourceKind::Memory, "dram", 32, Some(node));
                for s in 0..2 {
                    let socket = self.add(ResourceKind::Socket, format!("s{s}"), 1, Some(node));
                    for c in 0..8 {
                        self.add(ResourceKind::Core, format!("c{c}"), 1, Some(socket));
                    }
                }
                nodes.push(node);
            }
        }
        (cluster, nodes)
    }

    /// Builds a whole center: several clusters plus center-wide shared
    /// resources (a global filesystem and a site power budget). Returns
    /// (center id, per-cluster (id, nodes)).
    pub fn build_center(
        &mut self,
        clusters: &[(&str, u32, u32)],
        site_power_w: u64,
        fs_bandwidth_mbs: u64,
    ) -> (ResourceId, Vec<(ResourceId, Vec<ResourceId>)>) {
        let center = self.add(ResourceKind::Center, "center", 0, None);
        self.add(ResourceKind::Power, "site-power", site_power_w, Some(center));
        self.add(ResourceKind::Filesystem, "lustre", fs_bandwidth_mbs, Some(center));
        let mut out = Vec::new();
        for &(name, racks, nodes_per_rack) in clusters {
            let (cluster, nodes) = {
                // Clusters hang off the center.
                let cluster = self.add(ResourceKind::Cluster, name, 0, Some(center));
                let mut nodes = Vec::new();
                for r in 0..racks {
                    let rack =
                        self.add(ResourceKind::Rack, format!("{name}-rack{r}"), 0, Some(cluster));
                    self.add(
                        ResourceKind::Power,
                        format!("{name}-rack{r}-pdu"),
                        20_000,
                        Some(rack),
                    );
                    for n in 0..nodes_per_rack {
                        let node = self.add(
                            ResourceKind::Node,
                            format!("{name}{}", r * nodes_per_rack + n),
                            1,
                            Some(rack),
                        );
                        self.add(ResourceKind::Memory, "dram", 32, Some(node));
                        nodes.push(node);
                    }
                }
                (cluster, nodes)
            };
            out.push((cluster, nodes));
        }
        (center, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_navigate() {
        let mut p = ResourcePool::new();
        let root = p.add(ResourceKind::Cluster, "zin", 0, None);
        let node = p.add(ResourceKind::Node, "zin1", 1, Some(root));
        let core = p.add(ResourceKind::Core, "c0", 1, Some(node));
        assert_eq!(p.len(), 3);
        assert_eq!(p.children(root), &[node]);
        assert_eq!(p.get(core).parent, Some(node));
        assert!(p.is_ancestor(root, core));
        assert!(!p.is_ancestor(core, root));
        assert!(p.is_ancestor(node, node));
    }

    #[test]
    fn build_cluster_shape_matches_testbed() {
        let mut p = ResourcePool::new();
        let (cluster, nodes) = p.build_cluster("cab", 2, 4, 10_000);
        assert_eq!(nodes.len(), 8);
        // 16 cores per node, paper testbed shape.
        assert_eq!(p.find_kind(cluster, &ResourceKind::Core).len(), 8 * 16);
        assert_eq!(p.total_capacity(cluster, &ResourceKind::Memory), 8 * 32);
        assert_eq!(p.total_capacity(cluster, &ResourceKind::Power), 20_000);
        // Every node is under the cluster.
        for &n in &nodes {
            assert!(p.is_ancestor(cluster, n));
            assert_eq!(p.get(n).kind, ResourceKind::Node);
        }
    }

    #[test]
    fn build_center_with_shared_resources() {
        let mut p = ResourcePool::new();
        let (center, clusters) =
            p.build_center(&[("zin", 2, 8), ("cab", 1, 8)], 2_000_000, 500_000);
        assert_eq!(clusters.len(), 2);
        assert_eq!(p.find_kind(center, &ResourceKind::Node).len(), 24);
        assert_eq!(p.find_kind(center, &ResourceKind::Filesystem).len(), 1);
        // Site power + rack PDUs are all Power resources under the center.
        let power = p.total_capacity(center, &ResourceKind::Power);
        assert_eq!(power, 2_000_000 + 3 * 20_000);
    }

    #[test]
    fn custom_kinds_are_first_class() {
        let mut p = ResourcePool::new();
        let root = p.add(ResourceKind::Center, "c", 0, None);
        let burst = ResourceKind::Custom("burst-buffer".into());
        p.add(burst.clone(), "bb0", 800, Some(root));
        p.add(burst.clone(), "bb1", 800, Some(root));
        assert_eq!(p.total_capacity(root, &burst), 1600);
        assert_eq!(burst.to_string(), "custom:burst-buffer");
    }

    #[test]
    fn subtree_partitions() {
        let mut p = ResourcePool::new();
        let (cluster, _) = p.build_cluster("x", 2, 2, 1000);
        let racks = p.find_kind(cluster, &ResourceKind::Rack);
        assert_eq!(racks.len(), 2);
        let sub0 = p.subtree(racks[0]);
        let sub1 = p.subtree(racks[1]);
        for id in &sub0 {
            assert!(!sub1.contains(id));
        }
        assert_eq!(sub0.len() + sub1.len() + 1, p.len());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_panics() {
        let mut p = ResourcePool::new();
        p.add(ResourceKind::Node, "n", 1, Some(ResourceId(9)));
    }
}
