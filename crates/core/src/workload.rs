//! Synthetic workload generators.
//!
//! The paper motivates the new paradigm with workloads that are "diverse,
//! dynamic, and large, ... moving away from individual monolithic jobs.
//! Instead, ensembles of jobs, e.g., for Uncertainty Quantification or
//! Scale-bridging Applications, are becoming increasingly commonplace."
//! These generators produce seeded, reproducible job streams in those
//! shapes for the scheduler benches and examples.

use crate::jobspec::JobSpec;
use crate::rng::Rng;

/// A seeded workload generator.
pub struct Workload {
    rng: Rng,
    counter: u64,
}

impl Workload {
    /// Creates a generator with a fixed seed (runs are reproducible).
    pub fn seeded(seed: u64) -> Workload {
        Workload { rng: Rng::seeded(seed), counter: 0 }
    }

    fn next_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}-{}", self.counter)
    }

    /// A UQ-style ensemble: `count` small jobs of nearly uniform shape
    /// (1–2 nodes, walltimes within ±25% of `walltime_ns`).
    pub fn uq_ensemble(&mut self, count: usize, walltime_ns: u64) -> Vec<JobSpec> {
        (0..count)
            .map(|_| {
                let nodes = self.rng.gen_range(1..=2);
                let jitter = self.rng.gen_range(75u64..=125);
                let name = self.next_name("uq");
                JobSpec::rigid(name, nodes, walltime_ns * jitter / 100).with_power(300)
            })
            .collect()
    }

    /// A traditional capability mix: mostly small jobs, a heavy tail of
    /// large ones (log-uniform node counts up to `max_nodes`).
    pub fn capability_mix(&mut self, count: usize, max_nodes: u32, walltime_ns: u64) -> Vec<JobSpec> {
        let max_log = (32 - max_nodes.leading_zeros()).max(1);
        (0..count)
            .map(|_| {
                let log = self.rng.gen_range(0..max_log);
                let nodes = (1u32 << log).min(max_nodes);
                let wall = self.rng.gen_range(walltime_ns / 2..=walltime_ns * 2);
                let name = self.next_name("cap");
                JobSpec::rigid(name, nodes, wall).with_power(350)
            })
            .collect()
    }

    /// Malleable scale-bridging jobs that can shrink under pressure.
    pub fn malleable_batch(&mut self, count: usize, walltime_ns: u64) -> Vec<JobSpec> {
        (0..count)
            .map(|_| {
                let nominal = self.rng.gen_range(2..=8);
                let name = self.next_name("mall");
                JobSpec::rigid(name, nominal, walltime_ns)
                    .with_power(250)
                    .malleable(1, nominal * 2)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = Workload::seeded(42).uq_ensemble(20, 1_000);
        let b = Workload::seeded(42).uq_ensemble(20, 1_000);
        assert_eq!(a, b);
        let c = Workload::seeded(43).uq_ensemble(20, 1_000);
        assert_ne!(a, c);
    }

    #[test]
    fn uq_jobs_are_small() {
        let jobs = Workload::seeded(1).uq_ensemble(100, 1_000);
        assert_eq!(jobs.len(), 100);
        for j in &jobs {
            j.validate();
            assert!(j.nodes <= 2);
            assert!((750..=1250).contains(&j.walltime_ns));
        }
    }

    #[test]
    fn capability_mix_has_a_tail() {
        let jobs = Workload::seeded(7).capability_mix(200, 64, 1_000);
        let max = jobs.iter().map(|j| j.nodes).max().unwrap();
        let small = jobs.iter().filter(|j| j.nodes <= 2).count();
        assert!(max >= 16, "tail present, max {max}");
        assert!(small > jobs.len() / 6, "plenty of small jobs: {small}");
        for j in &jobs {
            j.validate();
            assert!(j.nodes <= 64);
        }
    }

    #[test]
    fn malleable_batch_bounds_contain_nominal() {
        for j in Workload::seeded(3).malleable_batch(50, 500) {
            j.validate();
            match j.elasticity {
                crate::jobspec::Elasticity::Malleable { min, max } => {
                    assert!(min <= j.nodes && j.nodes <= max);
                }
                other => panic!("expected malleable, got {other:?}"),
            }
        }
    }
}
