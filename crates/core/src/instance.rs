//! The unified job model: recursive Flux instances.
//!
//! Paper §III: a job is not merely an allocation — it is an RJMS instance
//! that "can either be used to run a single application or ... run its
//! own job management services, which then can recursively accept and
//! schedule (sub-)jobs". [`Instance`] implements that model with the
//! three hierarchy rules as hard invariants:
//!
//! * **Parent bounding** — an instance can never allocate more nodes or
//!   watts than its grant; attempts panic (they indicate a framework
//!   bug, not a user error).
//! * **Child empowerment** — each instance runs its own [`Scheduler`]
//!   over its own grant; parents never reach into a child's queue.
//! * **Parental consent** — [`Instance::request_grow`] and
//!   [`Instance::shrink_child`] route every elastic change through the
//!   parent, which applies its policy and its own free capacity.
//!
//! Instances advance on a shared virtual clock ([`Instance::advance`]):
//! jobs complete when their walltime elapses, schedulers run, and
//! sub-instances recurse. This makes the framework a deterministic
//! scheduling engine — the substrate the scheduler-parallelism ablation
//! (bench `ablate_sched`) measures.

use crate::jobspec::JobSpec;
use crate::sched::{RunningView, Scheduler, Start};
use std::collections::VecDeque;

/// Identifies a job within one instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

/// Lifecycle of a job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Queued, not yet started.
    Pending,
    /// Running with an allocation.
    Running,
    /// Finished (walltime elapsed).
    Complete,
    /// Removed from the queue before starting.
    Canceled,
}

/// A completed/ongoing job record for reports.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// The job.
    pub id: JobId,
    /// Spec it ran with.
    pub spec: JobSpec,
    /// Submission time.
    pub submit_ns: u64,
    /// Start time (if started).
    pub start_ns: Option<u64>,
    /// End time (if finished).
    pub end_ns: Option<u64>,
    /// Nodes it held while running.
    pub nodes: u32,
    /// Final state.
    pub state: JobState,
}

struct PendingJob {
    id: JobId,
    spec: JobSpec,
    submit_ns: u64,
}

struct RunningJob {
    id: JobId,
    spec: JobSpec,
    submit_ns: u64,
    start_ns: u64,
    end_ns: u64,
    nodes: u32,
    power_w: u64,
}

/// Why a grow request was denied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrowError {
    /// The parent has no such child.
    UnknownChild,
    /// Not enough free nodes or power at the parent right now.
    Insufficient,
    /// The parent's policy refuses elastic changes.
    PolicyDenied,
}

/// Instance construction parameters.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Name for reports (`"center"`, `"uq-ensemble"`, …).
    pub name: String,
    /// Node grant.
    pub nodes: u32,
    /// Power grant in watts.
    pub power_w: u64,
    /// Whether this instance consents to children growing.
    pub allow_grow: bool,
}

impl InstanceConfig {
    /// A grant of `nodes` nodes with a generous default power envelope
    /// (500 W/node) and grow consent enabled.
    pub fn new(name: impl Into<String>, nodes: u32) -> InstanceConfig {
        InstanceConfig {
            name: name.into(),
            nodes,
            power_w: u64::from(nodes) * 500,
            allow_grow: true,
        }
    }

    /// Overrides the power grant.
    pub fn with_power(mut self, watts: u64) -> InstanceConfig {
        self.power_w = watts;
        self
    }

    /// Disables grow consent (strict parent).
    pub fn deny_grow(mut self) -> InstanceConfig {
        self.allow_grow = false;
        self
    }
}

/// A Flux instance: a resource grant, a scheduler, a queue, running jobs,
/// and child instances.
pub struct Instance {
    /// Name for reports.
    pub name: String,
    grant_nodes: u32,
    grant_power_w: u64,
    used_nodes: u32,
    used_power_w: u64,
    allow_grow: bool,
    scheduler: Box<dyn Scheduler>,
    queue: VecDeque<PendingJob>,
    running: Vec<RunningJob>,
    children: Vec<(JobId, Instance)>,
    history: Vec<JobEvent>,
    next_job: u64,
    now_ns: u64,
}

impl Instance {
    /// Creates a root instance (a whole center or cluster session).
    pub fn root(config: InstanceConfig, scheduler: Box<dyn Scheduler>) -> Instance {
        Instance {
            name: config.name,
            grant_nodes: config.nodes,
            grant_power_w: config.power_w,
            used_nodes: 0,
            used_power_w: 0,
            allow_grow: config.allow_grow,
            scheduler,
            queue: VecDeque::new(),
            running: Vec::new(),
            children: Vec::new(),
            history: Vec::new(),
            next_job: 0,
            now_ns: 0,
        }
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The node grant.
    pub fn grant_nodes(&self) -> u32 {
        self.grant_nodes
    }

    /// The power grant in watts.
    pub fn grant_power_w(&self) -> u64 {
        self.grant_power_w
    }

    /// Free nodes right now.
    pub fn free_nodes(&self) -> u32 {
        self.grant_nodes - self.used_nodes
    }

    /// Free watts right now.
    pub fn free_power_w(&self) -> u64 {
        self.grant_power_w - self.used_power_w
    }

    /// Queued job count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Running job count (including child instances).
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// The completed/canceled job history.
    pub fn history(&self) -> &[JobEvent] {
        &self.history
    }

    /// Submits a job; the scheduler runs immediately, so the job may be
    /// running when this returns.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        spec.validate();
        self.next_job += 1;
        let id = JobId(self.next_job);
        self.queue.push_back(PendingJob { id, spec, submit_ns: self.now_ns });
        self.tick(self.now_ns);
        id
    }

    /// Cancels a pending job. Returns false if it is not in the queue.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.queue.iter().position(|p| p.id == id) {
            let p = self.queue.remove(pos).expect("position valid");
            self.history.push(JobEvent {
                id: p.id,
                spec: p.spec,
                submit_ns: p.submit_ns,
                start_ns: None,
                end_ns: None,
                nodes: 0,
                state: JobState::Canceled,
            });
            true
        } else {
            false
        }
    }

    /// Creates a child instance inside this one, leasing it `config.nodes`
    /// nodes and `config.power_w` watts from this instance's grant. The
    /// child appears as a running job (the unified job model) until
    /// [`Instance::close_child`].
    ///
    /// Returns `None` if the lease does not fit right now.
    pub fn spawn_child(
        &mut self,
        config: InstanceConfig,
        scheduler: Box<dyn Scheduler>,
    ) -> Option<JobId> {
        if config.nodes > self.free_nodes() || config.power_w > self.free_power_w() {
            return None;
        }
        self.next_job += 1;
        let id = JobId(self.next_job);
        self.used_nodes += config.nodes;
        self.used_power_w += config.power_w;
        let mut child = Instance::root(config, scheduler);
        child.now_ns = self.now_ns;
        self.children.push((id, child));
        Some(id)
    }

    /// Borrows a child instance.
    pub fn child(&self, id: JobId) -> Option<&Instance> {
        self.children.iter().find(|(cid, _)| *cid == id).map(|(_, c)| c)
    }

    /// Mutably borrows a child instance (to submit jobs into it).
    pub fn child_mut(&mut self, id: JobId) -> Option<&mut Instance> {
        self.children.iter_mut().find(|(cid, _)| *cid == id).map(|(_, c)| c)
    }

    /// Ids of all child instances.
    pub fn child_ids(&self) -> Vec<JobId> {
        self.children.iter().map(|(id, _)| *id).collect()
    }

    /// Tears down a child instance, returning its lease to this
    /// instance's free pool. The child must be idle (no running jobs).
    ///
    /// # Panics
    /// Panics if the child still has running jobs — destroying a live
    /// allocation would violate child empowerment.
    pub fn close_child(&mut self, id: JobId) -> Option<Instance> {
        let pos = self.children.iter().position(|(cid, _)| *cid == id)?;
        let (_, child) = self.children.remove(pos);
        assert!(
            child.running.is_empty() && child.children.is_empty(),
            "closing child {:?} with live work",
            child.name
        );
        self.used_nodes -= child.grant_nodes;
        self.used_power_w -= child.grant_power_w;
        Some(child)
    }

    /// Parental consent: a child asks to grow by `nodes` nodes and
    /// `power_w` watts. On success the child's grant expands.
    pub fn request_grow(&mut self, id: JobId, nodes: u32, power_w: u64) -> Result<(), GrowError> {
        if !self.allow_grow {
            return Err(GrowError::PolicyDenied);
        }
        if nodes > self.free_nodes() || power_w > self.free_power_w() {
            return Err(GrowError::Insufficient);
        }
        let child = self
            .children
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .map(|(_, c)| c)
            .ok_or(GrowError::UnknownChild)?;
        self.used_nodes += nodes;
        self.used_power_w += power_w;
        child.grant_nodes += nodes;
        child.grant_power_w += power_w;
        Ok(())
    }

    /// Shrinks a child's grant by `nodes`/`power_w`, returning capacity to
    /// this instance. Only capacity the child is not using can be
    /// reclaimed; the rest is refused (the child keeps running — shrink
    /// is cooperative, not preemptive).
    pub fn shrink_child(&mut self, id: JobId, nodes: u32, power_w: u64) -> Result<(), GrowError> {
        let child = self
            .children
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .map(|(_, c)| c)
            .ok_or(GrowError::UnknownChild)?;
        if nodes > child.free_nodes() || power_w > child.free_power_w() {
            return Err(GrowError::Insufficient);
        }
        child.grant_nodes -= nodes;
        child.grant_power_w -= power_w;
        self.used_nodes -= nodes;
        self.used_power_w -= power_w;
        Ok(())
    }

    /// Reduces this instance's own power grant (e.g. a site-wide cap
    /// arriving from above). Power is the most elastic resource: the cap
    /// applies immediately to future scheduling; running jobs keep their
    /// draw (`free_power_w` saturates at zero until they end).
    pub fn cap_power(&mut self, new_grant_w: u64) {
        self.grant_power_w = new_grant_w.max(self.used_power_w);
    }

    /// Advances virtual time to `to_ns`: completes due jobs, recurses into
    /// children, and runs the scheduler — repeatedly, since completions
    /// free capacity that lets more jobs start within the same call.
    pub fn advance(&mut self, to_ns: u64) {
        assert!(to_ns >= self.now_ns, "time goes forward");
        loop {
            // Next interesting instant: the earliest running-job end (here
            // or in a child) at or before `to_ns`.
            let next_end = self.earliest_end().filter(|&e| e <= to_ns);
            let step_to = next_end.unwrap_or(to_ns);
            self.tick(step_to);
            if next_end.is_none() {
                break;
            }
        }
    }

    fn earliest_end(&self) -> Option<u64> {
        let mine = self.running.iter().map(|r| r.end_ns).min();
        let theirs = self.children.iter().filter_map(|(_, c)| c.earliest_end()).min();
        match (mine, theirs) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// One step: move the clock, complete jobs due by then, schedule.
    fn tick(&mut self, to_ns: u64) {
        self.now_ns = to_ns;
        // Complete due jobs.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].end_ns <= to_ns {
                let r = self.running.swap_remove(i);
                self.used_nodes -= r.nodes;
                self.used_power_w -= r.power_w;
                // cap_power may have shrunk the grant below usage; keep
                // the invariant grant >= used.
                self.history.push(JobEvent {
                    id: r.id,
                    spec: r.spec,
                    submit_ns: r.submit_ns,
                    start_ns: Some(r.start_ns),
                    end_ns: Some(r.end_ns),
                    nodes: r.nodes,
                    state: JobState::Complete,
                });
            } else {
                i += 1;
            }
        }
        // Children advance on the same clock.
        for (_, child) in &mut self.children {
            child.advance(to_ns);
        }
        // Schedule.
        let specs: Vec<JobSpec> = self.queue.iter().map(|p| p.spec.clone()).collect();
        let running_view: Vec<RunningView> = self
            .running
            .iter()
            .map(|r| RunningView { nodes: r.nodes, power_w: r.power_w, end_ns: r.end_ns })
            .collect();
        let starts: Vec<Start> = self.scheduler.schedule(
            &specs,
            self.free_nodes(),
            self.free_power_w(),
            self.now_ns,
            &running_view,
        );
        // Apply decisions, validating the parent-bounding invariant.
        let mut started_ids = Vec::new();
        for s in &starts {
            let p = &self.queue[s.queue_idx];
            let power = p.spec.power_at(s.nodes);
            assert!(
                s.nodes <= self.free_nodes() && power <= self.free_power_w(),
                "scheduler {} over-committed the grant",
                self.scheduler.name()
            );
            self.used_nodes += s.nodes;
            self.used_power_w += power;
            self.running.push(RunningJob {
                id: p.id,
                spec: p.spec.clone(),
                submit_ns: p.submit_ns,
                start_ns: self.now_ns,
                end_ns: self.now_ns + p.spec.walltime_ns,
                nodes: s.nodes,
                power_w: power,
            });
            started_ids.push(p.id);
        }
        self.queue.retain(|p| !started_ids.contains(&p.id));
    }

    /// Drives the instance until every queued and running job (including
    /// children's) has completed; returns the finish time.
    ///
    /// # Panics
    /// Panics if no progress is possible anywhere in the hierarchy (a
    /// queued job larger than its instance's grant would never start).
    pub fn drain(&mut self) -> u64 {
        loop {
            if self.queue.is_empty() && self.running.is_empty() && self.children_idle() {
                return self.now_ns;
            }
            let before = (self.total_queued(), self.total_running(), self.now_ns);
            match self.earliest_end() {
                Some(e) => self.advance(e),
                None => self.advance(self.now_ns), // schedule-only pass
            }
            let after = (self.total_queued(), self.total_running(), self.now_ns);
            assert!(
                before != after,
                "hierarchy under {:?} is stuck: {} queued jobs can never start",
                self.name,
                after.0,
            );
        }
    }

    fn children_idle(&self) -> bool {
        self.children
            .iter()
            .all(|(_, c)| c.queue.is_empty() && c.running.is_empty() && c.children_idle())
    }

    /// Queued jobs in this instance and all descendants.
    fn total_queued(&self) -> usize {
        self.queue.len() + self.children.iter().map(|(_, c)| c.total_queued()).sum::<usize>()
    }

    /// Running jobs in this instance and all descendants.
    fn total_running(&self) -> usize {
        self.running.len() + self.children.iter().map(|(_, c)| c.total_running()).sum::<usize>()
    }

    /// Debug-invariant check, used by tests: usage within grant at every
    /// level.
    pub fn check_invariants(&self) {
        assert!(self.used_nodes <= self.grant_nodes, "{}: node bound violated", self.name);
        assert!(self.used_power_w <= self.grant_power_w, "{}: power bound violated", self.name);
        let child_nodes: u32 = self.children.iter().map(|(_, c)| c.grant_nodes).sum();
        let running_nodes: u32 = self.running.iter().map(|r| r.nodes).sum();
        assert_eq!(child_nodes + running_nodes, self.used_nodes, "{}: usage accounting", self.name);
        for (_, c) in &self.children {
            c.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{EasyBackfill, Fcfs};

    fn inst(nodes: u32) -> Instance {
        Instance::root(InstanceConfig::new("test", nodes), Box::new(Fcfs))
    }

    #[test]
    fn single_job_lifecycle() {
        let mut i = inst(4);
        let id = i.submit(JobSpec::rigid("a", 2, 100));
        i.advance(0);
        assert_eq!(i.running_len(), 1);
        assert_eq!(i.free_nodes(), 2);
        i.advance(100);
        assert_eq!(i.running_len(), 0);
        assert_eq!(i.free_nodes(), 4);
        let ev = &i.history()[0];
        assert_eq!(ev.id, id);
        assert_eq!(ev.state, JobState::Complete);
        assert_eq!(ev.start_ns, Some(0));
        assert_eq!(ev.end_ns, Some(100));
    }

    #[test]
    fn jobs_queue_when_full_and_start_on_completion() {
        let mut i = inst(4);
        i.submit(JobSpec::rigid("a", 4, 100));
        i.submit(JobSpec::rigid("b", 4, 100));
        i.advance(0);
        assert_eq!(i.running_len(), 1);
        assert_eq!(i.queue_len(), 1);
        // advance() steps through the completion and starts b at t=100.
        i.advance(150);
        assert_eq!(i.running_len(), 1);
        assert_eq!(i.queue_len(), 0);
        let end = i.drain();
        assert_eq!(end, 200);
        assert_eq!(i.history().len(), 2);
    }

    #[test]
    fn drain_detects_impossible_jobs() {
        let mut i = inst(2);
        i.submit(JobSpec::rigid("too-big", 4, 10));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| i.drain()));
        assert!(r.is_err());
    }

    #[test]
    fn cancel_pending_job() {
        let mut i = inst(1);
        i.submit(JobSpec::rigid("a", 1, 1_000));
        let b = i.submit(JobSpec::rigid("b", 1, 1_000));
        i.advance(0);
        assert!(i.cancel(b));
        assert!(!i.cancel(b));
        assert_eq!(i.drain(), 1_000);
        assert_eq!(
            i.history().iter().filter(|e| e.state == JobState::Canceled).count(),
            1
        );
    }

    #[test]
    fn child_instance_lease_and_return() {
        let mut parent = inst(8);
        let child_id = parent
            .spawn_child(InstanceConfig::new("child", 4), Box::new(Fcfs))
            .expect("lease fits");
        assert_eq!(parent.free_nodes(), 4);
        // The child schedules its own jobs within its grant.
        let child = parent.child_mut(child_id).unwrap();
        child.submit(JobSpec::rigid("sub1", 2, 50));
        child.submit(JobSpec::rigid("sub2", 2, 50));
        parent.advance(50);
        parent.check_invariants();
        let child = parent.child(child_id).unwrap();
        assert_eq!(child.history().len(), 2, "both sub-jobs ran in parallel");
        parent.close_child(child_id).unwrap();
        assert_eq!(parent.free_nodes(), 8);
    }

    #[test]
    fn parent_bounding_rejects_oversized_lease() {
        let mut parent = inst(4);
        assert!(parent.spawn_child(InstanceConfig::new("big", 8), Box::new(Fcfs)).is_none());
        // Power bound too.
        let cfg = InstanceConfig::new("hot", 2).with_power(1 << 40);
        assert!(parent.spawn_child(cfg, Box::new(Fcfs)).is_none());
    }

    #[test]
    fn grow_with_parental_consent() {
        let mut parent = inst(8);
        let child_id =
            parent.spawn_child(InstanceConfig::new("c", 2), Box::new(Fcfs)).unwrap();
        assert_eq!(parent.request_grow(child_id, 4, 2_000), Ok(()));
        assert_eq!(parent.child(child_id).unwrap().grant_nodes(), 6);
        assert_eq!(parent.free_nodes(), 2);
        // Too much: refused.
        assert_eq!(parent.request_grow(child_id, 4, 0), Err(GrowError::Insufficient));
        parent.check_invariants();
    }

    #[test]
    fn grow_denied_by_policy() {
        let mut parent = Instance::root(
            InstanceConfig::new("strict", 8).deny_grow(),
            Box::new(Fcfs),
        );
        let child_id =
            parent.spawn_child(InstanceConfig::new("c", 2), Box::new(Fcfs)).unwrap();
        assert_eq!(parent.request_grow(child_id, 1, 0), Err(GrowError::PolicyDenied));
    }

    #[test]
    fn shrink_returns_unused_capacity_only() {
        let mut parent = inst(8);
        let child_id =
            parent.spawn_child(InstanceConfig::new("c", 4), Box::new(Fcfs)).unwrap();
        parent.child_mut(child_id).unwrap().submit(JobSpec::rigid("busy", 3, 1_000));
        parent.advance(0);
        // Child uses 3 of 4; only 1 reclaimable.
        assert_eq!(parent.shrink_child(child_id, 2, 0), Err(GrowError::Insufficient));
        assert_eq!(parent.shrink_child(child_id, 1, 0), Ok(()));
        assert_eq!(parent.free_nodes(), 5);
        parent.check_invariants();
    }

    #[test]
    fn power_cap_throttles_scheduling() {
        let mut i = Instance::root(
            InstanceConfig::new("capped", 8).with_power(800),
            Box::new(Fcfs),
        );
        // 8 jobs × 1 node × 350 W: only 2 fit in 800 W.
        for k in 0..8 {
            i.submit(JobSpec::rigid(format!("p{k}"), 1, 100));
        }
        i.advance(0);
        assert_eq!(i.running_len(), 2, "power cap binds before nodes do");
        // Lifting the cap lets the rest start.
        i.cap_power(8 * 350);
        i.advance(1);
        assert_eq!(i.running_len(), 8);
        assert_eq!(i.drain(), 101);
    }

    #[test]
    fn deep_hierarchy_three_levels() {
        let mut center = Instance::root(InstanceConfig::new("center", 32), Box::new(Fcfs));
        let cluster = center
            .spawn_child(InstanceConfig::new("cluster", 16), Box::new(EasyBackfill))
            .unwrap();
        let ensemble = center
            .child_mut(cluster)
            .unwrap()
            .spawn_child(InstanceConfig::new("ensemble", 8), Box::new(Fcfs))
            .unwrap();
        center
            .child_mut(cluster)
            .unwrap()
            .child_mut(ensemble)
            .unwrap()
            .submit(JobSpec::rigid("leafjob", 4, 10));
        center.advance(10);
        center.check_invariants();
        let done = center
            .child(cluster)
            .unwrap()
            .child(ensemble)
            .unwrap()
            .history()
            .len();
        assert_eq!(done, 1);
    }

    #[test]
    fn moldable_jobs_adapt_to_instance_size() {
        let mut i = Instance::root(InstanceConfig::new("m", 6), Box::new(Fcfs));
        i.submit(JobSpec::rigid("mold", 8, 100).with_power(0).moldable(2, 8));
        i.advance(0);
        assert_eq!(i.running_len(), 1);
        assert_eq!(i.free_nodes(), 0, "moldable job shrank to the 6 free nodes");
    }
}
