//! Job specifications.

/// How elastic a job's allocation is (paper §II, challenge 3: "rigid vs
/// moldable vs malleable scheduling against different workload and
/// resource types").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Elasticity {
    /// Exactly `nodes`, fixed at submission.
    Rigid,
    /// The scheduler may pick any size in `[min, max]` at start time, but
    /// it is fixed afterwards.
    Moldable {
        /// Smallest acceptable node count.
        min: u32,
        /// Largest useful node count.
        max: u32,
    },
    /// The allocation may grow and shrink within `[min, max]` while the
    /// job runs (subject to parental consent).
    Malleable {
        /// Smallest acceptable node count.
        min: u32,
        /// Largest useful node count.
        max: u32,
    },
}

/// A job request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Requested node count (the nominal size; see [`Elasticity`]).
    pub nodes: u32,
    /// Requested walltime in nanoseconds of virtual time.
    pub walltime_ns: u64,
    /// Power drawn per allocated node, in watts (counted against the
    /// instance's power budget while running).
    pub power_per_node_w: u64,
    /// Elasticity class.
    pub elasticity: Elasticity,
}

impl JobSpec {
    /// A rigid job with the given size and walltime, drawing a typical
    /// 350 W per node.
    pub fn rigid(name: impl Into<String>, nodes: u32, walltime_ns: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            nodes,
            walltime_ns,
            power_per_node_w: 350,
            elasticity: Elasticity::Rigid,
        }
    }

    /// Sets the per-node power draw.
    pub fn with_power(mut self, watts: u64) -> JobSpec {
        self.power_per_node_w = watts;
        self
    }

    /// Makes the job malleable within `[min, max]` nodes.
    pub fn malleable(mut self, min: u32, max: u32) -> JobSpec {
        assert!(min <= self.nodes && self.nodes <= max, "nominal size within bounds");
        self.elasticity = Elasticity::Malleable { min, max };
        self
    }

    /// Makes the job moldable within `[min, max]` nodes.
    pub fn moldable(mut self, min: u32, max: u32) -> JobSpec {
        assert!(min <= max, "bounds ordered");
        self.elasticity = Elasticity::Moldable { min, max };
        self
    }

    /// Total power this job draws at `nodes` allocated nodes.
    pub fn power_at(&self, nodes: u32) -> u64 {
        self.power_per_node_w * u64::from(nodes)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on a zero-node or zero-walltime spec.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "job {:?} requests zero nodes", self.name);
        assert!(self.walltime_ns > 0, "job {:?} requests zero walltime", self.name);
        match self.elasticity {
            Elasticity::Rigid => {}
            Elasticity::Moldable { min, max } | Elasticity::Malleable { min, max } => {
                assert!(min >= 1 && min <= max, "job {:?} has bad bounds", self.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_constructor() {
        let s = JobSpec::rigid("hello", 4, 1_000);
        s.validate();
        assert_eq!(s.elasticity, Elasticity::Rigid);
        assert_eq!(s.power_at(4), 1400);
    }

    #[test]
    fn builders_compose() {
        let s = JobSpec::rigid("uq", 8, 5_000).with_power(200).malleable(2, 16);
        s.validate();
        assert_eq!(s.power_at(16), 3200);
        assert_eq!(s.elasticity, Elasticity::Malleable { min: 2, max: 16 });
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_nodes_rejected() {
        JobSpec::rigid("bad", 0, 1).validate();
    }

    #[test]
    #[should_panic(expected = "within bounds")]
    fn malleable_bounds_must_include_nominal() {
        let _ = JobSpec::rigid("bad", 10, 1).malleable(1, 5);
    }
}
