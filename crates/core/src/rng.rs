//! A small seeded PRNG for reproducible workload generation.
//!
//! SplitMix64: full 64-bit state, passes practical statistical tests, and
//! keeps the workspace free of external dependencies (the build
//! environment has no crates.io access). Not cryptographic.

use std::ops::{Range, RangeInclusive};

/// A seeded pseudo-random generator with `rand`-style `gen_range`.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a fixed seed.
    pub fn seeded(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (multiply-shift; `bound` must be > 0).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `range`, like `rand::Rng::gen_range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seeded(9);
        let mut b = Rng::seeded(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seeded(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&v));
            let w: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = Rng::seeded(2);
        // Must not panic or loop; just produce something.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
