//! # flux-core
//!
//! The Flux framework layer: the conceptual design of §II–III of the
//! ICPP'14 paper, as an executable library.
//!
//! * **Generalized resource model** ([`resource`]) — an extensible typed
//!   resource graph (center → cluster → rack → node → socket → core,
//!   plus power, filesystems, bandwidth, licenses) instead of the
//!   traditional flat node list.
//! * **Unified job model** ([`instance`]) — a job *is* a full Flux
//!   instance: it owns a resource grant, runs its own scheduler, and can
//!   recursively host sub-jobs (which may themselves be instances). The
//!   three hierarchy rules are enforced as invariants:
//!   *parent bounding* (a child's allocation never exceeds its grant),
//!   *child empowerment* (the child schedules its grant alone), and
//!   *parental consent* (grow/shrink requests are granted or denied by
//!   the parent).
//! * **Schedulers** ([`sched`]) — pluggable per instance: FCFS and
//!   EASY backfill, both power-aware. Hierarchical scheduling — a parent
//!   leasing coarse resource blocks to child instances that schedule
//!   their own workloads — is what the paper's "scheduler parallelism"
//!   argument is about; the `ablate_sched` bench measures it.
//! * **Multilevel elasticity** ([`instance::Instance::request_grow`]) —
//!   allocations can grow and shrink at run time, with different
//!   elasticity for different resource types (power reshapes instantly;
//!   nodes only when free).
//!
//! The framework layer deliberately runs on its own virtual clock (it is
//! a scheduling engine, not a message system); the run-time substrate —
//! brokers, KVS, wexec — lives in the sibling crates, and the
//! `hierarchical_jobs` example shows the two composed.


#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod instance;
pub mod jobspec;
pub mod ordered_lock;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod spec;
pub mod workload;

pub use instance::{GrowError, Instance, InstanceConfig, JobEvent, JobId, JobState};
pub use jobspec::{Elasticity, JobSpec};
pub use ordered_lock::{OrderedGuard, OrderedMutex};
pub use resource::{Resource, ResourceId, ResourceKind, ResourcePool};
pub use sched::{EasyBackfill, Fcfs, RunningView, Scheduler};
pub use spec::SpecError;
pub use workload::Workload;
