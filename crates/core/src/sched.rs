//! Pluggable schedulers.
//!
//! Each Flux instance runs its own scheduler over its own grant (child
//! empowerment). Both built-in policies are power-aware: a job only
//! starts if its node count *and* its power draw fit the instance's
//! remaining budget, which is how center-level power capping reaches
//! individual jobs through the hierarchy.

use crate::jobspec::{Elasticity, JobSpec};

/// What the scheduler can see of a running job.
#[derive(Clone, Copy, Debug)]
pub struct RunningView {
    /// Nodes held.
    pub nodes: u32,
    /// Watts held.
    pub power_w: u64,
    /// Virtual end time (start + walltime).
    pub end_ns: u64,
}

/// A decision to start the queued job at `queue_idx` with `nodes` nodes
/// (relevant for moldable jobs; rigid jobs always get their nominal
/// size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Start {
    /// Index into the queue slice passed to [`Scheduler::schedule`].
    pub queue_idx: usize,
    /// Granted node count.
    pub nodes: u32,
}

/// A scheduling policy.
pub trait Scheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Given the pending queue (in arrival order), free capacity, and the
    /// running set, decide which jobs start now. Decisions are applied in
    /// the returned order; implementations must not over-commit (the
    /// instance validates and panics on violation).
    fn schedule(
        &mut self,
        queue: &[JobSpec],
        free_nodes: u32,
        free_power_w: u64,
        now_ns: u64,
        running: &[RunningView],
    ) -> Vec<Start>;
}

/// The node count a spec starts with given free capacity (moldable jobs
/// shrink to fit; rigid/malleable start at nominal).
fn start_size(spec: &JobSpec, free_nodes: u32) -> Option<u32> {
    match spec.elasticity {
        Elasticity::Rigid | Elasticity::Malleable { .. } => {
            (spec.nodes <= free_nodes).then_some(spec.nodes)
        }
        Elasticity::Moldable { min, max } => {
            let n = free_nodes.min(max);
            (n >= min).then_some(n)
        }
    }
}

/// First-come-first-served: start jobs strictly in queue order until the
/// head no longer fits.
#[derive(Default, Debug, Clone, Copy)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn schedule(
        &mut self,
        queue: &[JobSpec],
        mut free_nodes: u32,
        mut free_power_w: u64,
        _now_ns: u64,
        _running: &[RunningView],
    ) -> Vec<Start> {
        let mut out = Vec::new();
        for (i, spec) in queue.iter().enumerate() {
            let Some(n) = start_size(spec, free_nodes) else { break };
            if spec.power_at(n) > free_power_w {
                break;
            }
            free_nodes -= n;
            free_power_w -= spec.power_at(n);
            out.push(Start { queue_idx: i, nodes: n });
        }
        out
    }
}

/// EASY backfilling: FCFS, plus jobs further back in the queue may start
/// out of order if doing so cannot delay the queue head's reservation.
///
/// The head's *shadow time* is the earliest instant enough running jobs
/// will have ended for the head to start; backfilled jobs must either end
/// before the shadow time or use only nodes the head will not need.
#[derive(Default, Debug, Clone, Copy)]
pub struct EasyBackfill;

impl Scheduler for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy-backfill"
    }

    fn schedule(
        &mut self,
        queue: &[JobSpec],
        free_nodes: u32,
        free_power_w: u64,
        now_ns: u64,
        running: &[RunningView],
    ) -> Vec<Start> {
        // Phase 1: plain FCFS prefix.
        let mut out = Fcfs.schedule(queue, free_nodes, free_power_w, now_ns, running);
        let started: Vec<usize> = out.iter().map(|s| s.queue_idx).collect();
        let mut free_nodes = free_nodes
            - out.iter().map(|s| s.nodes).sum::<u32>();
        let mut free_power_w = free_power_w
            - out
                .iter()
                .map(|s| queue[s.queue_idx].power_at(s.nodes))
                .sum::<u64>();
        // The first job that did NOT start is the head we must protect.
        let Some(head_idx) = (0..queue.len()).find(|i| !started.contains(i)) else {
            return out;
        };
        let head = &queue[head_idx];

        // Shadow time: walk running jobs by end time until the head fits.
        // (Jobs we just started run for their full walltime from now.)
        let mut ends: Vec<(u64, u32, u64)> = running
            .iter()
            .map(|r| (r.end_ns, r.nodes, r.power_w))
            .collect();
        ends.extend(out.iter().map(|s| {
            let spec = &queue[s.queue_idx];
            (now_ns + spec.walltime_ns, s.nodes, spec.power_at(s.nodes))
        }));
        ends.sort_unstable();
        let mut avail_nodes = free_nodes;
        let mut avail_power = free_power_w;
        let mut shadow = u64::MAX;
        let mut extra_nodes_at_shadow = 0u32;
        for (end, nodes, power) in ends {
            if avail_nodes >= head.nodes && avail_power >= head.power_at(head.nodes) {
                break;
            }
            avail_nodes += nodes;
            avail_power += power;
            shadow = end;
        }
        if avail_nodes >= head.nodes && avail_power >= head.power_at(head.nodes) {
            extra_nodes_at_shadow = avail_nodes - head.nodes;
        }

        // Phase 2: backfill later jobs.
        for (i, spec) in queue.iter().enumerate().skip(head_idx + 1) {
            let Some(n) = start_size(spec, free_nodes) else { continue };
            if spec.power_at(n) > free_power_w {
                continue;
            }
            let ends_before_shadow = shadow == u64::MAX || now_ns + spec.walltime_ns <= shadow;
            let fits_beside_head = n <= extra_nodes_at_shadow;
            if ends_before_shadow || fits_beside_head {
                free_nodes -= n;
                free_power_w -= spec.power_at(n);
                if !ends_before_shadow {
                    extra_nodes_at_shadow -= n;
                }
                out.push(Start { queue_idx: i, nodes: n });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(nodes: u32, walltime: u64) -> JobSpec {
        JobSpec::rigid(format!("j{nodes}x{walltime}"), nodes, walltime).with_power(100)
    }

    #[test]
    fn fcfs_starts_in_order_until_blocked() {
        let queue = [job(2, 10), job(3, 10), job(100, 10), job(1, 10)];
        let starts = Fcfs.schedule(&queue, 8, 1_000_000, 0, &[]);
        // 2 + 3 fit; 100 blocks; FCFS must NOT skip ahead to the 1-node job.
        assert_eq!(
            starts,
            [Start { queue_idx: 0, nodes: 2 }, Start { queue_idx: 1, nodes: 3 }]
        );
    }

    #[test]
    fn fcfs_respects_power_budget() {
        let queue = [job(2, 10), job(2, 10)];
        // Power for only one job (2 nodes × 100 W).
        let starts = Fcfs.schedule(&queue, 8, 200, 0, &[]);
        assert_eq!(starts.len(), 1);
    }

    #[test]
    fn moldable_jobs_shrink_to_fit() {
        let queue = [JobSpec::rigid("m", 8, 10).with_power(0).moldable(2, 8)];
        let starts = Fcfs.schedule(&queue, 4, 1_000_000, 0, &[]);
        assert_eq!(starts, [Start { queue_idx: 0, nodes: 4 }]);
        // Below min it cannot start.
        let starts = Fcfs.schedule(&queue, 1, 1_000_000, 0, &[]);
        assert!(starts.is_empty());
    }

    #[test]
    fn backfill_fills_holes_without_delaying_head() {
        // 8 nodes; a 6-node job runs until t=100. Queue: head needs 8
        // (waits for t=100), then a 2-node × 50 job that finishes before
        // the shadow — backfillable.
        let running = [RunningView { nodes: 6, power_w: 600, end_ns: 100 }];
        let queue = [job(8, 1000), job(2, 50)];
        let starts = EasyBackfill.schedule(&queue, 2, 10_000, 0, &running);
        assert_eq!(starts, [Start { queue_idx: 1, nodes: 2 }]);
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_head() {
        let running = [RunningView { nodes: 6, power_w: 600, end_ns: 100 }];
        // The backfill candidate runs past the shadow time AND would eat
        // nodes the head needs.
        let queue = [job(8, 1000), job(2, 500)];
        let starts = EasyBackfill.schedule(&queue, 2, 10_000, 0, &running);
        assert!(starts.is_empty(), "{starts:?}");
    }

    #[test]
    fn backfill_allows_long_jobs_on_spare_nodes() {
        // 10 free nodes; head needs 8 as soon as the 6-node job ends.
        // After the head starts there will be 10+6-8 = wait — build the
        // simpler case: free 4, running 6 ending at 100, head wants 8:
        // shadow=100, at shadow avail=10, extra = 2. A 2-node long job
        // fits beside the head indefinitely.
        let running = [RunningView { nodes: 6, power_w: 600, end_ns: 100 }];
        let queue = [job(8, 1000), job(2, 10_000)];
        let starts = EasyBackfill.schedule(&queue, 4, 100_000, 0, &running);
        assert_eq!(starts, [Start { queue_idx: 1, nodes: 2 }]);
    }

    #[test]
    fn backfill_equals_fcfs_when_everything_fits() {
        let queue = [job(1, 10), job(2, 20), job(3, 30)];
        let f = Fcfs.schedule(&queue, 10, 10_000, 0, &[]);
        let b = EasyBackfill.schedule(&queue, 10, 10_000, 0, &[]);
        assert_eq!(f, b);
    }

    #[test]
    fn backfill_beats_fcfs_on_utilization() {
        let running = [RunningView { nodes: 7, power_w: 700, end_ns: 1_000 }];
        let queue = [job(8, 100), job(1, 100), job(1, 100)];
        let f = Fcfs.schedule(&queue, 1, 10_000, 0, &running);
        let b = EasyBackfill.schedule(&queue, 1, 10_000, 0, &running);
        assert!(f.is_empty());
        assert_eq!(b.len(), 1, "one 1-node job backfills: {b:?}");
    }
}
