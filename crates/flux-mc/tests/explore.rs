//! Acceptance tests for the model checker: bulk exploration of the live
//! tree stays clean, and the dedup-disabled mutants are caught with a
//! minimal replayable trace.

use flux_mc::{explore, replay_trace, ExploreConfig, RunConfig, Scenario};

/// Schedule budget for the bulk exploration, overridable for deeper
/// local runs (`FLUX_MC_SCHEDULES=200000 cargo test -p flux-mc --release`).
fn budget() -> usize {
    std::env::var("FLUX_MC_SCHEDULES").ok().and_then(|s| s.parse().ok()).unwrap_or(10_000)
}

#[test]
fn fence_scenario_explores_ten_thousand_clean_schedules() {
    let budget = budget();
    let cfg = ExploreConfig { max_schedules: budget, ..ExploreConfig::default() };
    let report = explore(&Scenario::kvs_fence(), &cfg);
    for v in &report.violations {
        eprintln!("violation: {}\n  replay with: FLUX_MC_TRACE='{}'", v.violation, v.trace);
    }
    assert!(report.violations.is_empty(), "live tree violated an invariant");
    assert!(
        report.stats.schedules >= budget,
        "explored only {} of {budget} schedules: state space exhausted early",
        report.stats.schedules
    );
    assert_eq!(report.stats.invalid, 0, "generated an infeasible child schedule");
    assert!(report.stats.pruned > 0, "sleep-set pruning never fired");
    assert!(report.stats.max_frontier >= 4, "scenario lost its concurrency");
}

#[test]
fn fence_mutant_caught_with_minimal_replayable_trace() {
    let cfg = ExploreConfig { stop_at_first: true, ..ExploreConfig::default() };
    let report = explore(&Scenario::kvs_fence_mutant(), &cfg);
    let found = report.violations.first().expect("dedup-disabled mutant must be caught");
    assert_eq!(
        found.schedule.devs.len(),
        1,
        "a single duplicated frame suffices; minimization left {:?}",
        found.schedule
    );
    assert!(found.trace.starts_with("flux-mc:v1:kvs_fence_mutant:"), "{}", found.trace);

    // The trace must replay to a violation on its own.
    let out = replay_trace(&found.trace, &RunConfig::default()).expect("trace is feasible");
    assert!(out.violation.is_some(), "minimal trace did not reproduce: {}", found.trace);
}

#[test]
fn commit_mutant_caught_and_reproducible() {
    let cfg = ExploreConfig { stop_at_first: true, ..ExploreConfig::default() };
    let report = explore(&Scenario::kvs_commit_mutant(), &cfg);
    let found = report.violations.first().expect("push double-apply mutant must be caught");
    let out = replay_trace(&found.trace, &RunConfig::default()).expect("trace is feasible");
    assert!(out.violation.is_some(), "minimal trace did not reproduce: {}", found.trace);
}

#[test]
fn barrier_scenario_small_exploration_is_clean() {
    let cfg = ExploreConfig { max_schedules: 1_500, ..ExploreConfig::default() };
    let report = explore(&Scenario::barrier(), &cfg);
    for v in &report.violations {
        eprintln!("violation: {}\n  replay with: FLUX_MC_TRACE='{}'", v.violation, v.trace);
    }
    assert!(report.violations.is_empty(), "barrier tree violated an invariant");
    // The two-barrier space exhausts below the budget under these
    // bounds; what matters is that it was fully swept and stayed clean.
    assert!(report.stats.schedules > 50, "swept only {}", report.stats.schedules);
}

/// The sharded cross-shard fence: every explored interleaving of fence
/// contribution relay, cross-shard part push, and setroot propagation
/// must release one agreed frontier covering both contributed shards —
/// the extended history oracle and the post-fence read check both gate
/// each schedule.
#[test]
fn shard_fence_scenario_exploration_is_clean() {
    let cfg = ExploreConfig { max_schedules: 4_000, ..ExploreConfig::default() };
    let report = explore(&Scenario::kvs_shard_fence(), &cfg);
    for v in &report.violations {
        eprintln!("violation: {}\n  replay with: FLUX_MC_TRACE='{}'", v.violation, v.trace);
    }
    assert!(report.violations.is_empty(), "sharded fence tree violated an invariant");
    assert!(report.stats.schedules > 50, "swept only {}", report.stats.schedules);
}

/// Watch registration racing a cross-shard commit: the watcher's
/// re-check is keyed to the owning shard's root switch and its
/// `WaitVersion` to the other shard's stream; no interleaving may stall
/// a script or break per-shard version monotonicity.
#[test]
fn shard_watch_scenario_exploration_is_clean() {
    let cfg = ExploreConfig { max_schedules: 4_000, ..ExploreConfig::default() };
    let report = explore(&Scenario::kvs_shard_watch(), &cfg);
    for v in &report.violations {
        eprintln!("violation: {}\n  replay with: FLUX_MC_TRACE='{}'", v.violation, v.trace);
    }
    assert!(report.violations.is_empty(), "sharded watch tree violated an invariant");
    assert!(report.stats.schedules > 50, "swept only {}", report.stats.schedules);
}

/// The debugging workflow: `FLUX_MC_TRACE='flux-mc:v1:...' cargo test
/// -p flux-mc replay_trace_from_env` re-executes exactly the schedule a
/// violation report named and fails loudly if it no longer reproduces.
#[test]
fn replay_trace_from_env() {
    let Ok(trace) = std::env::var("FLUX_MC_TRACE") else { return };
    let out = replay_trace(&trace, &RunConfig::default()).expect("env trace must be feasible");
    match out.violation {
        Some(v) => panic!("reproduced after {} events: {v}", out.events),
        None => eprintln!("trace ran clean over {} events", out.events),
    }
}
