//! flux-mc: a stateless model checker for the flux broker tree.
//!
//! The deterministic simulator (`flux-sim`) already makes every run
//! bit-reproducible; this crate adds *controlled* scheduling on top:
//! it drives a [`SimSession`](flux_rt::sim::SimSession) one event at a
//! time, systematically explores message-delivery interleavings and
//! duplications, and checks protocol invariants on every schedule:
//!
//! * per-client KVS history consistency (`flux_kvs::history`),
//! * at-most-once application of fence and push batches (version
//!   overrun detection),
//! * exactly one reply per decoded RPC-kind request,
//! * fence/barrier completion (post-fence reads observe every
//!   participant's write-back set; no script stalls at quiescence).
//!
//! A violation is reported as a minimal replayable trace
//! (`flux-mc:v1:<scenario>:<deviations>`); feed it back through
//! [`replay_trace`] — or set `FLUX_MC_TRACE` when running the test
//! suite — to re-execute exactly the failing schedule under a debugger.
//!
//! See `DESIGN.md` §13 for the exploration algorithm and its reduction
//! rules.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod explore;
mod run;
mod scenario;
mod trace;

pub use explore::{
    explore, minimize, replay_trace, ExploreConfig, ExploreReport, ExploreStats, FoundViolation,
};
pub use run::{run_schedule, RunConfig, RunOutcome, StepInfo, Violation, ViolationKind};
pub use scenario::{ModuleSet, Scenario};
pub use trace::{decode_trace, encode_trace, Choice, Schedule};
