//! Checkable scenarios: a session topology, module set, and scripts,
//! plus the oracle data the invariant checks need.

use flux_broker::CommsModule;
use flux_kvs::{KvsConfig, KvsModule};
use flux_modules::BarrierModule;
use flux_rt::script::Op;
use flux_rt::sim::SimSession;
use flux_sim::NetParams;
use flux_value::Value;
use flux_wire::Rank;
use std::collections::BTreeMap;

/// Which modules every broker in the scenario loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleSet {
    /// The KVS module only. `dedup: false` re-introduces the historical
    /// fence/push double-apply bug (the mutation smoke-test target).
    Kvs {
        /// Duplicate-frame dedup at the KVS master (production: `true`).
        dedup: bool,
        /// Master-side push batching. Legacy scenarios pin this `false`
        /// so per-push version counts stay exact — a duplicated push
        /// parked in the *same* batch as its original coalesces into one
        /// version bump, which would hide the mutants' double-apply from
        /// the version-overrun oracle.
        batch: bool,
        /// Shard-master count (1 = classic single master). Sharded
        /// scenarios place masters on ranks `0..shards` and scripts on
        /// slave ranks only.
        shards: u32,
    },
    /// KVS plus the barrier module.
    KvsBarrier {
        /// Duplicate-frame dedup at the KVS master (production: `true`).
        dedup: bool,
        /// Master-side push batching (see [`ModuleSet::Kvs`]).
        batch: bool,
    },
}

impl ModuleSet {
    fn kvs_config(dedup: bool, batch: bool, shards: u32) -> KvsConfig {
        KvsConfig {
            dedup,
            batch_window_ns: if batch { KvsConfig::default().batch_window_ns } else { 0 },
            shards,
            ..KvsConfig::default()
        }
    }

    fn build(self) -> Vec<Box<dyn CommsModule>> {
        match self {
            ModuleSet::Kvs { dedup, batch, shards } => {
                vec![Box::new(KvsModule::with_config(Self::kvs_config(dedup, batch, shards)))]
            }
            ModuleSet::KvsBarrier { dedup, batch } => vec![
                Box::new(KvsModule::with_config(Self::kvs_config(dedup, batch, 1))),
                Box::new(BarrierModule::new()),
            ],
        }
    }
}

/// One model-checking scenario: a fixed session plus its correctness
/// oracle. Scenarios are small on purpose — the explorer multiplies
/// every visible step into a branching point, so a handful of clients
/// already yields tens of thousands of distinct schedules.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable name, embedded in traces for replay lookup.
    pub name: &'static str,
    /// Broker count.
    pub size: u32,
    /// Tree arity.
    pub arity: u32,
    /// Modules loaded on every broker.
    pub modules: ModuleSet,
    /// Scripted clients: `(home rank, ops)`.
    pub scripts: Vec<(Rank, Vec<Op>)>,
    /// Failure injection: kill this rank's broker once the runner reaches
    /// the given visible step. The schedule's step counter makes the kill
    /// point deterministic across replays. The victim must host no
    /// scripts (its clients could never finish) and must not be the root.
    pub kill: Option<(Rank, u32)>,
    /// Total KVS root commits the scenario performs when every fence and
    /// commit applies exactly once (0 = skip the version-overrun check).
    pub expected_applies: u64,
    /// Key → value that any successful post-fence `Get` must observe
    /// (the fence barrier guarantees visibility of all participants'
    /// write-back sets).
    pub post_fence: BTreeMap<String, Value>,
}

impl Scenario {
    /// Builds a fresh session for one schedule run. `NetParams::default`
    /// keeps latencies deterministic; the explorer owns all reordering.
    pub fn build(&self) -> SimSession {
        let modules = self.modules;
        SimSession::new(self.size, self.arity, NetParams::default(), move |_rank| modules.build())
    }

    /// Looks a scenario up by its trace name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        match name {
            "kvs_fence" => Some(Self::kvs_fence()),
            "kvs_fence_mutant" => Some(Self::kvs_fence_mutant()),
            "kvs_commit" => Some(Self::kvs_commit()),
            "kvs_commit_mutant" => Some(Self::kvs_commit_mutant()),
            "kvs_commit_kill" => Some(Self::kvs_commit_kill()),
            "kvs_batch" => Some(Self::kvs_batch()),
            "kvs_shard_fence" => Some(Self::kvs_shard_fence()),
            "kvs_shard_watch" => Some(Self::kvs_shard_watch()),
            "barrier" => Some(Self::barrier()),
            _ => None,
        }
    }

    /// Names of all scenarios expected to be violation-free on the live
    /// tree (the mutants are deliberately excluded).
    pub fn clean_names() -> &'static [&'static str] {
        &[
            "kvs_fence",
            "kvs_commit",
            "kvs_commit_kill",
            "kvs_batch",
            "kvs_shard_fence",
            "kvs_shard_watch",
            "barrier",
        ]
    }

    /// The flagship scenario: a 3-broker tree where two clients on
    /// different leaf ranks each put one key, synchronize on a fence,
    /// then read *each other's* key. Exercises put staging, fence
    /// contribution relay, root apply, setroot event propagation, and
    /// the get/load walk — every KVS interleaving class at once.
    pub fn kvs_fence() -> Scenario {
        Self::fence_scenario("kvs_fence", true)
    }

    /// [`Scenario::kvs_fence`] with master-side dedup disabled: the
    /// mutation smoke-test target. Duplicated fence contributions apply
    /// twice, so some schedule must violate an invariant.
    pub fn kvs_fence_mutant() -> Scenario {
        Self::fence_scenario("kvs_fence_mutant", false)
    }

    fn fence_scenario(name: &'static str, dedup: bool) -> Scenario {
        // Four participants, two per leaf broker: concurrent clients on
        // one broker interleave locally, the two leaf subtrees
        // interleave globally, and every participant reads its
        // neighbours' keys afterwards. This is the densest interleaving
        // space per event of any scenario here.
        const NPROCS: u64 = 4;
        let key = |i: usize| format!("mc.k{i}");
        let script = |i: usize| {
            vec![
                Op::Put { key: key(i), val: Value::from(1i64) },
                Op::Fence { name: "mc.fence".into(), nprocs: NPROCS },
                Op::Get { key: key((i + 1) % NPROCS as usize) },
                Op::Get { key: key(i) },
                Op::GetVersion,
            ]
        };
        let mut post_fence = BTreeMap::new();
        for i in 0..NPROCS as usize {
            post_fence.insert(key(i), Value::from(1i64));
        }
        Scenario {
            name,
            size: 3,
            arity: 2,
            modules: ModuleSet::Kvs { dedup, batch: false, shards: 1 },
            scripts: (0..NPROCS as usize).map(|i| (Rank(1 + (i as u32 % 2)), script(i))).collect(),
            // One fence = one root apply covering all write-back sets.
            expected_applies: 1,
            post_fence,
            kill: None,
        }
    }

    /// Independent commits from two leaf ranks: exercises the push relay
    /// path (commit → push → master apply → response unwind).
    pub fn kvs_commit() -> Scenario {
        Self::commit_scenario("kvs_commit", true)
    }

    /// [`Scenario::kvs_commit`] with master-side dedup disabled: a
    /// duplicated push frame applies twice and overruns the version.
    pub fn kvs_commit_mutant() -> Scenario {
        Self::commit_scenario("kvs_commit_mutant", false)
    }

    fn commit_scenario(name: &'static str, dedup: bool) -> Scenario {
        let c1 = vec![
            Op::Put { key: "mc.x".into(), val: Value::from(1i64) },
            Op::Commit,
            Op::Get { key: "mc.x".into() },
            Op::GetVersion,
        ];
        let c2 = vec![
            Op::Put { key: "mc.y".into(), val: Value::from(1i64) },
            Op::Commit,
            Op::Get { key: "mc.y".into() },
            Op::GetVersion,
        ];
        Scenario {
            name,
            size: 3,
            arity: 2,
            modules: ModuleSet::Kvs { dedup, batch: false, shards: 1 },
            scripts: vec![(Rank(1), c1), (Rank(2), c2)],
            expected_applies: 2,
            post_fence: BTreeMap::new(),
            kill: None,
        }
    }

    /// A commit from rank 1 while the idle leaf broker (rank 2) dies a
    /// few visible steps in. The rank-2 subtree stops being a branching
    /// source the moment it dies — events already destined for it leave
    /// the eligible frontier — so schedules only interleave the work that
    /// can still affect the outcome, and the client on the surviving
    /// branch must finish untouched under every remaining interleaving.
    pub fn kvs_commit_kill() -> Scenario {
        let c1 = vec![
            Op::Put { key: "mc.kx".into(), val: Value::from(1i64) },
            Op::Commit,
            Op::Get { key: "mc.kx".into() },
            Op::GetVersion,
        ];
        Scenario {
            name: "kvs_commit_kill",
            size: 3,
            arity: 2,
            modules: ModuleSet::Kvs { dedup: true, batch: false, shards: 1 },
            scripts: vec![(Rank(1), c1)],
            kill: Some((Rank(2), 2)),
            expected_applies: 1,
            post_fence: BTreeMap::new(),
        }
    }

    /// [`Scenario::kvs_commit`] with master-side push batching enabled:
    /// explores every interleaving of push arrival against the batch
    /// window timer. The oracle bounds (version ≤ 2 applies,
    /// read-your-writes in the history check) must hold whether the two
    /// pushes coalesce into one walk or flush separately — and a batch
    /// applied twice would still overrun the version bound.
    pub fn kvs_batch() -> Scenario {
        let c1 = vec![
            Op::Put { key: "mc.bx".into(), val: Value::from(1i64) },
            Op::Commit,
            Op::Get { key: "mc.bx".into() },
            Op::GetVersion,
        ];
        let c2 = vec![
            Op::Put { key: "mc.by".into(), val: Value::from(2i64) },
            Op::Commit,
            Op::Get { key: "mc.by".into() },
            Op::GetVersion,
        ];
        Scenario {
            name: "kvs_batch",
            size: 3,
            arity: 2,
            modules: ModuleSet::Kvs { dedup: true, batch: true, shards: 1 },
            scripts: vec![(Rank(1), c1), (Rank(2), c2)],
            expected_applies: 2,
            post_fence: BTreeMap::new(),
            kill: None,
        }
    }

    /// Two shard masters (ranks 0–1), two clients on slave ranks, each
    /// contributing a key owned by a *different* shard to one fence:
    /// the root must collect both contributions, push the remote part to
    /// the shard-1 master, and release one agreed frontier covering both
    /// shards. Explores every interleaving of fence contribution relay
    /// against the cross-shard push/ack exchange; the history oracle
    /// rejects any schedule where the fence releases with a missing
    /// shard entry or where released clients observe different
    /// frontiers.
    pub fn kvs_shard_fence() -> Scenario {
        const SHARDS: u32 = 2;
        let key = |s: u32| flux_kvs::shard::key_on_shard("mc.sf.", s, SHARDS);
        let script = |s: u32| {
            vec![
                Op::Put { key: key(s), val: Value::from(1i64) },
                Op::Fence { name: "mc.sfence".into(), nprocs: 2 },
                Op::Get { key: key((s + 1) % SHARDS) },
                Op::Get { key: key(s) },
            ]
        };
        let mut post_fence = BTreeMap::new();
        for s in 0..SHARDS {
            post_fence.insert(key(s), Value::from(1i64));
        }
        Scenario {
            name: "kvs_shard_fence",
            size: 4,
            arity: 2,
            modules: ModuleSet::Kvs { dedup: true, batch: false, shards: SHARDS },
            scripts: vec![(Rank(2), script(0)), (Rank(3), script(1))],
            // Frontier replies carry per-shard versions, not a single
            // top-level `version`, so the overrun bound does not apply.
            expected_applies: 0,
            post_fence,
            kill: None,
        }
    }

    /// A watcher on one slave rank watching a shard-1 key while a writer
    /// on the other slave commits a cross-shard write set: the watch
    /// stream's re-check must key off the *owning* shard's root switch,
    /// and the watcher's `WaitVersion` on shard 0 must release once the
    /// commit's setroot event reaches its broker. Explores watch
    /// registration against commit push/setroot ordering across two
    /// independent shard version streams.
    pub fn kvs_shard_watch() -> Scenario {
        const SHARDS: u32 = 2;
        let k0 = flux_kvs::shard::key_on_shard("mc.sw.", 0, SHARDS);
        let k1 = flux_kvs::shard::key_on_shard("mc.sw.", 1, SHARDS);
        let watcher = vec![
            Op::Request {
                topic: flux_proto::KvsMethod::Watch.topic(),
                payload: Value::from_pairs([("k", Value::from(k1.as_str()))]),
            },
            Op::WaitVersion(1),
            Op::Get { key: k0.clone() },
        ];
        let writer = vec![
            Op::Put { key: k0, val: Value::from(1i64) },
            Op::Put { key: k1.clone(), val: Value::from(2i64) },
            Op::Commit,
            Op::Get { key: k1 },
        ];
        Scenario {
            name: "kvs_shard_watch",
            size: 4,
            arity: 2,
            modules: ModuleSet::Kvs { dedup: true, batch: false, shards: SHARDS },
            scripts: vec![(Rank(2), watcher), (Rank(3), writer)],
            expected_applies: 0,
            post_fence: BTreeMap::new(),
            kill: None,
        }
    }

    /// Two clients entering one barrier across the tree: checks barrier
    /// completion (every entrant released exactly once) under reordered
    /// and duplicated `barrier.up` aggregation frames.
    pub fn barrier() -> Scenario {
        let ops = |_| {
            vec![
                Op::Barrier { name: "mc.bar".into(), nprocs: 2 },
                Op::Barrier { name: "mc.bar2".into(), nprocs: 2 },
            ]
        };
        Scenario {
            name: "barrier",
            size: 3,
            arity: 2,
            modules: ModuleSet::KvsBarrier { dedup: true, batch: false },
            scripts: vec![(Rank(1), ops(1)), (Rank(2), ops(2))],
            expected_applies: 0,
            post_fence: BTreeMap::new(),
            kill: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_finds_every_builder() {
        for name in [
            "kvs_fence",
            "kvs_fence_mutant",
            "kvs_commit",
            "kvs_commit_mutant",
            "kvs_commit_kill",
            "kvs_batch",
            "kvs_shard_fence",
            "kvs_shard_watch",
            "barrier",
        ] {
            let s = Scenario::by_name(name).expect("known scenario");
            assert_eq!(s.name, name);
            assert!(!s.scripts.is_empty());
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn clean_names_resolve_and_exclude_mutants() {
        for name in Scenario::clean_names() {
            assert!(Scenario::by_name(name).is_some());
            assert!(!name.contains("mutant"));
        }
    }
}
