//! Schedules, deviations, and the replayable trace format.
//!
//! A schedule is a *sparse deviation list*: at every visible step the
//! runner takes the default choice (dispatch the earliest eligible
//! event) unless the schedule names that step. This makes schedules
//! tiny, canonical, and trivially replayable — a violation report is
//! just a scenario name plus a handful of `(step, choice)` pairs.

use std::fmt;

/// One deviation from the default schedule at a visible step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Dispatch the `n`-th eligible event instead of the 0-th.
    Pick(u16),
    /// Duplicate the `n`-th eligible event (a broker-to-broker frame
    /// dup, as the transport fault layer models), then dispatch the
    /// default event.
    Dup(u16),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Pick(n) => write!(f, "p={n}"),
            Choice::Dup(n) => write!(f, "d={n}"),
        }
    }
}

/// A sparse schedule: deviations sorted by step, at most one per step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// `(visible step, choice)` pairs, strictly increasing by step.
    pub devs: Vec<(u32, Choice)>,
}

impl Schedule {
    /// The empty (default) schedule.
    pub fn empty() -> Schedule {
        Schedule::default()
    }

    /// The deviation at `step`, if any.
    pub fn at(&self, step: u32) -> Option<Choice> {
        self.devs
            .binary_search_by_key(&step, |d| d.0)
            .ok()
            .map(|i| self.devs[i].1)
    }

    /// The step of the last deviation (`None` for the default schedule).
    pub fn last_step(&self) -> Option<u32> {
        self.devs.last().map(|d| d.0)
    }

    /// Number of duplication deviations.
    pub fn dups(&self) -> usize {
        self.devs.iter().filter(|d| matches!(d.1, Choice::Dup(_))).count()
    }

    /// Number of pick (reordering) deviations.
    pub fn picks(&self) -> usize {
        self.devs.iter().filter(|d| matches!(d.1, Choice::Pick(_))).count()
    }

    /// This schedule extended with a deviation at `step`, which must be
    /// strictly after the last existing deviation.
    pub fn extended(&self, step: u32, choice: Choice) -> Schedule {
        debug_assert!(self.last_step().is_none_or(|s| step > s));
        let mut devs = self.devs.clone();
        devs.push((step, choice));
        Schedule { devs }
    }
}

/// Encodes a violation trace: `flux-mc:v1:<scenario>:<devs>` where
/// `<devs>` is a comma-separated list of `p@<step>=<n>` / `d@<step>=<n>`
/// entries, or `-` for the default schedule.
pub fn encode_trace(scenario: &str, sched: &Schedule) -> String {
    if sched.devs.is_empty() {
        return format!("flux-mc:v1:{scenario}:-");
    }
    let devs: Vec<String> = sched
        .devs
        .iter()
        .map(|(step, choice)| match choice {
            Choice::Pick(n) => format!("p@{step}={n}"),
            Choice::Dup(n) => format!("d@{step}={n}"),
        })
        .collect();
    format!("flux-mc:v1:{scenario}:{}", devs.join(","))
}

/// Decodes a trace produced by [`encode_trace`] back into a scenario
/// name and schedule.
pub fn decode_trace(trace: &str) -> Result<(String, Schedule), String> {
    let rest = trace
        .strip_prefix("flux-mc:v1:")
        .ok_or_else(|| format!("not a flux-mc v1 trace: {trace:?}"))?;
    let (scenario, devs_str) = rest
        .split_once(':')
        .ok_or_else(|| format!("trace missing deviation list: {trace:?}"))?;
    if scenario.is_empty() {
        return Err("trace has an empty scenario name".to_owned());
    }
    let mut sched = Schedule::empty();
    if devs_str != "-" {
        for part in devs_str.split(',') {
            let (kind, body) = part.split_at(1.min(part.len()));
            let body = body
                .strip_prefix('@')
                .ok_or_else(|| format!("bad deviation {part:?}"))?;
            let (step, n) = body
                .split_once('=')
                .ok_or_else(|| format!("bad deviation {part:?}"))?;
            let step: u32 =
                step.parse().map_err(|_| format!("bad step in {part:?}"))?;
            let n: u16 = n.parse().map_err(|_| format!("bad index in {part:?}"))?;
            let choice = match kind {
                "p" => Choice::Pick(n),
                "d" => Choice::Dup(n),
                _ => return Err(format!("unknown deviation kind in {part:?}")),
            };
            if sched.last_step().is_some_and(|s| step <= s) {
                return Err(format!("deviations out of order at step {step}"));
            }
            sched.devs.push((step, choice));
        }
    }
    Ok((scenario.to_owned(), sched))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trip() {
        let sched = Schedule {
            devs: vec![(3, Choice::Pick(2)), (7, Choice::Dup(0)), (12, Choice::Pick(1))],
        };
        let enc = encode_trace("kvs_fence", &sched);
        assert_eq!(enc, "flux-mc:v1:kvs_fence:p@3=2,d@7=0,p@12=1");
        let (name, dec) = decode_trace(&enc).expect("decodes");
        assert_eq!(name, "kvs_fence");
        assert_eq!(dec, sched);
    }

    #[test]
    fn empty_trace_round_trip() {
        let enc = encode_trace("barrier", &Schedule::empty());
        assert_eq!(enc, "flux-mc:v1:barrier:-");
        let (name, dec) = decode_trace(&enc).expect("decodes");
        assert_eq!(name, "barrier");
        assert!(dec.devs.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_trace("flux-mc:v2:x:-").is_err());
        assert!(decode_trace("flux-mc:v1:x:q@1=2").is_err());
        assert!(decode_trace("flux-mc:v1:x:p@5=1,p@3=0").is_err());
        assert!(decode_trace("flux-mc:v1::-").is_err());
        assert!(decode_trace("nonsense").is_err());
    }

    #[test]
    fn schedule_lookup_and_extend() {
        let s = Schedule::empty().extended(4, Choice::Pick(1)).extended(9, Choice::Dup(0));
        assert_eq!(s.at(4), Some(Choice::Pick(1)));
        assert_eq!(s.at(9), Some(Choice::Dup(0)));
        assert_eq!(s.at(5), None);
        assert_eq!(s.last_step(), Some(9));
        assert_eq!(s.picks(), 1);
        assert_eq!(s.dups(), 1);
    }
}
