//! Systematic schedule exploration: iterative-deepening BFS over sparse
//! deviation lists with sleep-set-style pruning.
//!
//! Every schedule is visited exactly once: a child schedule extends its
//! parent with one deviation at a step *strictly after* the parent's
//! last deviation, so the (schedule → children) relation forms a tree
//! rooted at the default schedule. The BFS queue orders schedules by
//! deviation count, which is exactly iterative deepening on the number
//! of preemptions — shallow (likelier) interleavings first.

use crate::run::{run_schedule, RunConfig, RunOutcome, Violation};
use crate::scenario::Scenario;
use crate::trace::{encode_trace, Choice, Schedule};
use std::collections::VecDeque;

/// Exploration budgets and bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Stop after this many distinct feasible schedules.
    pub max_schedules: usize,
    /// Maximum total deviations per schedule (depth bound).
    pub max_devs: usize,
    /// Maximum `Pick` deviations per schedule (preemption bound).
    pub max_picks: usize,
    /// Maximum `Dup` deviations per schedule.
    pub max_dups: usize,
    /// How far down the eligible frontier a deviation may reach: only
    /// slots `< pick_window` are considered. Bounds per-step branching.
    pub pick_window: usize,
    /// Stop at the first violation (mutation smoke-tests) instead of
    /// exhausting the budget.
    pub stop_at_first: bool,
    /// Per-schedule run limits.
    pub run: RunConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            max_devs: 3,
            max_picks: 3,
            max_dups: 1,
            pick_window: 4,
            stop_at_first: false,
            run: RunConfig::default(),
        }
    }
}

/// A violation found during exploration, already minimized.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// The minimal schedule still producing the violation.
    pub schedule: Schedule,
    /// The violation seen on the *original* (pre-minimization) schedule.
    pub violation: Violation,
    /// Replayable trace of the minimal schedule (`FLUX_MC_TRACE` format).
    pub trace: String,
}

/// Aggregate exploration statistics.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Distinct feasible schedules executed.
    pub schedules: usize,
    /// Schedules rejected as infeasible (should be 0 for generated ones).
    pub invalid: usize,
    /// Child deviations pruned by the commuting-pick (sleep set) rule.
    pub pruned: usize,
    /// Largest eligible frontier seen.
    pub max_frontier: u16,
}

/// The result of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Statistics.
    pub stats: ExploreStats,
    /// All violations found (empty = the scenario passed its budget).
    pub violations: Vec<FoundViolation>,
}

/// Explores `scenario` within `cfg`'s budgets.
pub fn explore(scenario: &Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut queue: VecDeque<Schedule> = VecDeque::new();
    queue.push_back(Schedule::empty());

    while let Some(sched) = queue.pop_front() {
        if report.stats.schedules >= cfg.max_schedules {
            break;
        }
        let out = run_schedule(scenario, &sched, &cfg.run);
        if !out.valid {
            report.stats.invalid += 1;
            continue;
        }
        report.stats.schedules += 1;
        for info in &out.steps {
            report.stats.max_frontier = report.stats.max_frontier.max(info.eligible);
        }

        if let Some(violation) = out.violation {
            let schedule = minimize(scenario, &sched, &cfg.run);
            let trace = encode_trace(scenario.name, &schedule);
            report.violations.push(FoundViolation { schedule, violation, trace });
            if cfg.stop_at_first {
                break;
            }
            // A violating schedule's suffix behaviour is already broken;
            // expanding it would only find shadows of the same bug.
            continue;
        }

        if sched.devs.len() < cfg.max_devs {
            expand(&sched, &out, cfg, &mut queue, &mut report.stats);
        }
    }
    report
}

/// Pushes every non-pruned child of `sched` onto the queue, respecting
/// the remaining schedule budget (children beyond it would never run).
fn expand(
    sched: &Schedule,
    out: &RunOutcome,
    cfg: &ExploreConfig,
    queue: &mut VecDeque<Schedule>,
    stats: &mut ExploreStats,
) {
    let first_step = sched.last_step().map_or(0, |s| s + 1);
    let can_pick = sched.picks() < cfg.max_picks;
    let can_dup = sched.dups() < cfg.max_dups;
    for step in first_step..out.steps.len() as u32 {
        let info = &out.steps[step as usize];
        let window = (info.eligible as usize).min(cfg.pick_window);
        if can_pick {
            for n in 1..window {
                if info.prunable[n] {
                    stats.pruned += 1;
                    continue;
                }
                if stats.schedules + queue.len() >= cfg.max_schedules {
                    return;
                }
                queue.push_back(sched.extended(step, Choice::Pick(n as u16)));
            }
        }
        if can_dup {
            for n in 0..window {
                if !info.dupable[n] {
                    continue;
                }
                if stats.schedules + queue.len() >= cfg.max_schedules {
                    return;
                }
                queue.push_back(sched.extended(step, Choice::Dup(n as u16)));
            }
        }
    }
}

/// Greedily minimizes a violating schedule: repeatedly drops any single
/// deviation whose removal preserves *some* violation. The result is
/// 1-minimal — removing any remaining deviation yields a clean run.
pub fn minimize(scenario: &Scenario, sched: &Schedule, run_cfg: &RunConfig) -> Schedule {
    let mut current = sched.clone();
    loop {
        let mut improved = false;
        for i in 0..current.devs.len() {
            let mut trial = current.clone();
            trial.devs.remove(i);
            let out = run_schedule(scenario, &trial, run_cfg);
            if out.valid && out.violation.is_some() {
                current = trial;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Replays a `FLUX_MC_TRACE` string: decodes it, looks the scenario up
/// by name, and runs the schedule once.
pub fn replay_trace(trace: &str, run_cfg: &RunConfig) -> Result<RunOutcome, String> {
    let (name, sched) = crate::trace::decode_trace(trace)?;
    let scenario = Scenario::by_name(&name)
        .ok_or_else(|| format!("trace names unknown scenario {name:?}"))?;
    let out = run_schedule(&scenario, &sched, run_cfg);
    if !out.valid {
        return Err(format!("trace {trace:?} is infeasible on scenario {name:?}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExploreConfig {
        ExploreConfig { max_schedules: 200, max_devs: 2, ..ExploreConfig::default() }
    }

    #[test]
    fn small_exploration_of_live_tree_is_clean() {
        let report = explore(&Scenario::kvs_commit(), &small());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.stats.schedules, 200);
        assert_eq!(report.stats.invalid, 0);
        assert!(report.stats.pruned > 0, "sleep-set pruning never fired");
    }

    #[test]
    fn killing_a_broker_shrinks_the_explored_state_space() {
        // With max_devs = 1 the explorer enumerates every single-
        // deviation schedule, so the schedule count directly measures the
        // number of branching points. Killing the idle leaf broker must
        // shrink that space: deliveries destined for the dead actor are
        // no longer listed as pending, so they stop being pickable (and
        // the exploration stays violation-free — the surviving branch is
        // unaffected under every remaining interleaving).
        let cfg = ExploreConfig {
            max_schedules: 100_000,
            max_devs: 1,
            ..ExploreConfig::default()
        };
        let with_kill = Scenario::kvs_commit_kill();
        let mut without_kill = with_kill.clone();
        without_kill.kill = None;
        let base = explore(&without_kill, &cfg);
        let killed = explore(&with_kill, &cfg);
        assert!(killed.violations.is_empty(), "{:?}", killed.violations);
        assert!(base.violations.is_empty(), "{:?}", base.violations);
        assert!(
            killed.stats.schedules < base.stats.schedules,
            "dead-target filtering must shrink the schedule space: \
             {} (kill) vs {} (no kill)",
            killed.stats.schedules,
            base.stats.schedules,
        );
    }

    #[test]
    fn replay_of_default_trace_runs() {
        let out = replay_trace("flux-mc:v1:kvs_commit:-", &RunConfig::default())
            .expect("replayable");
        assert!(out.violation.is_none());
        assert!(replay_trace("flux-mc:v1:unknown:-", &RunConfig::default()).is_err());
    }
}
