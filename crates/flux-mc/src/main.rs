//! `flux-mc` CLI: explore a scenario or replay a violation trace.
//!
//! ```text
//! flux-mc [scenario] [--schedules N] [--stop-at-first]
//! flux-mc --replay <trace>          # or set FLUX_MC_TRACE
//! flux-mc --list
//! ```

#![forbid(unsafe_code)]

use flux_mc::{explore, replay_trace, ExploreConfig, RunConfig, Scenario};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: flux-mc [scenario] [--schedules N] [--stop-at-first]\n       \
         flux-mc --replay <trace>\n       flux-mc --list"
    );
    ExitCode::FAILURE
}

fn replay(trace: &str) -> ExitCode {
    match replay_trace(trace, &RunConfig::default()) {
        Ok(out) => match out.violation {
            Some(v) => {
                println!("violation reproduced after {} events: {v}", out.events);
                ExitCode::SUCCESS
            }
            None => {
                println!("schedule ran clean ({} events)", out.events);
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Ok(trace) = std::env::var("FLUX_MC_TRACE") {
        return replay(&trace);
    }

    let mut scenario_name: Option<String> = None;
    let mut cfg = ExploreConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for name in Scenario::clean_names() {
                    println!("{name}");
                }
                println!("kvs_fence_mutant\nkvs_commit_mutant");
                return ExitCode::SUCCESS;
            }
            "--replay" => {
                let Some(trace) = it.next() else { return usage() };
                return replay(trace);
            }
            "--schedules" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else { return usage() };
                cfg.max_schedules = n;
            }
            "--devs" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else { return usage() };
                cfg.max_devs = n;
                cfg.max_picks = cfg.max_picks.max(n);
            }
            "--stop-at-first" => cfg.stop_at_first = true,
            name if scenario_name.is_none() && !name.starts_with('-') => {
                scenario_name = Some(name.to_owned());
            }
            _ => return usage(),
        }
    }

    let name = scenario_name.unwrap_or_else(|| "kvs_fence".to_owned());
    let Some(scenario) = Scenario::by_name(&name) else {
        eprintln!("unknown scenario {name:?} (try --list)");
        return ExitCode::FAILURE;
    };

    let report = explore(&scenario, &cfg);
    println!(
        "{name}: {} schedules explored, {} pruned, max frontier {}",
        report.stats.schedules, report.stats.pruned, report.stats.max_frontier
    );
    for v in &report.violations {
        println!("violation: {}", v.violation);
        println!("  replay with: FLUX_MC_TRACE='{}'", v.trace);
    }
    if report.violations.is_empty() {
        println!("no violations");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
