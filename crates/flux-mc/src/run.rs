//! The controlled schedule runner: executes one [`Scenario`] under one
//! [`Schedule`] and checks every invariant against the outcome.
//!
//! # Scheduling model
//!
//! The simulator's event heap splits into two classes:
//!
//! * **Invisible** events — actor `Start` and message propagation
//!   (`Arrive`) legs. These never branch behaviour on their own, so the
//!   runner auto-dispatches them in default `(time, seq)` order.
//! * **Visible** events — message `Handle` legs and timers. Each one is
//!   a potential branching point: the runner computes the *eligible
//!   frontier* and consults the schedule for a deviation.
//!
//! Eligibility encodes what the transport actually guarantees: event
//! plane links are FIFO (the broker's seq dedup depends on it, and the
//! fault layer suppresses reordering there too — see
//! `LinkFaults::fate_ordered`), so event-plane handles on the same
//! `(from, to)` link must dispatch lowest-seq first. Everything else
//! may reorder freely. Duplication choices are restricted to
//! broker-to-broker frames, matching the fault layer's model (IPC
//! client links are reliable).

use crate::scenario::Scenario;
use crate::trace::{Choice, Schedule};
use flux_kvs::history;
use flux_proto::MethodKind;
use flux_rt::chaos::histories_for;
use flux_rt::script::ScriptClient;
use flux_rt::sim::SimSession;
use flux_rt::transport::ScriptOutcome;
use flux_sim::{ActorId, PendingEvent, PendingKind};
use flux_value::Value;
use flux_wire::{MsgId, MsgType};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Tuning knobs for a single schedule run (shared with the explorer).
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Abort a schedule after this many engine events: a run that busy
    /// loops under some interleaving is itself a liveness violation.
    pub max_events: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        // An unperturbed scenario run takes a few hundred events; two
        // orders of magnitude of slack separates "slow schedule" from
        // "livelock" without slowing the explorer down.
        RunConfig { max_events: 20_000 }
    }
}

/// What kind of invariant a schedule violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The event budget ran out with events still pending.
    Livelock,
    /// A client received two replies to one request on a schedule with
    /// no duplication deviations.
    DuplicateReply,
    /// A decoded RPC-kind request got no reply by quiescence.
    MissingReply,
    /// A script did not finish even though the session went quiet.
    Stalled,
    /// The per-client KVS histories are inconsistent
    /// (`flux_kvs::history::check`).
    History,
    /// The observed store version exceeds the scenario's expected number
    /// of root applies: some batch applied more than once.
    VersionOverrun,
    /// A fence completed without making a participant's write-back set
    /// visible: a post-fence read missed a fenced key.
    FenceIncomplete,
}

/// An invariant violation found on one schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub kind: ViolationKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Per visible step facts the explorer uses to generate child schedules.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// Eligible frontier size at this step.
    pub eligible: u16,
    /// For each frontier slot `n > 0`: would picking it commute with
    /// every event it overtakes (same-target check)? Commuting picks are
    /// pruned — the default order already covers their behaviour.
    pub prunable: Vec<bool>,
    /// For each frontier slot: is it a duplicable broker-to-broker frame?
    pub dupable: Vec<bool>,
}

/// The outcome of running one schedule.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `false` if the schedule was infeasible (a deviation referenced a
    /// frontier slot that does not exist); nothing else is meaningful.
    pub valid: bool,
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
    /// Per-step branching facts for child-schedule generation.
    pub steps: Vec<StepInfo>,
    /// Total engine events dispatched.
    pub events: u64,
}

impl RunOutcome {
    fn invalid() -> RunOutcome {
        RunOutcome { valid: false, violation: None, steps: Vec::new(), events: 0 }
    }
}

/// True for events the runner treats as branching points.
fn visible(ev: &PendingEvent) -> bool {
    match &ev.kind {
        PendingKind::Timer { .. } => true,
        PendingKind::Message { handle, .. } => *handle,
        PendingKind::Start => false,
    }
}

/// The eligible frontier: all pending visible events, minus event-plane
/// handles overtaken on their own `(from, to)` link (those links are
/// FIFO in every transport).
fn eligible_frontier(pending: Vec<PendingEvent>) -> Vec<PendingEvent> {
    let mut first_on_link: HashMap<(ActorId, ActorId), u64> = HashMap::new();
    for ev in &pending {
        if let PendingKind::Message { from, msg_type: MsgType::Event, .. } = &ev.kind {
            let slot = first_on_link.entry((*from, ev.to)).or_insert(ev.seq);
            *slot = (*slot).min(ev.seq);
        }
    }
    pending
        .into_iter()
        .filter(|ev| match &ev.kind {
            PendingKind::Message { from, msg_type: MsgType::Event, .. } => {
                first_on_link[&(*from, ev.to)] == ev.seq
            }
            _ => true,
        })
        .collect()
}

/// True if this frontier event is a duplicable broker-to-broker frame.
fn dupable(session: &SimSession, ev: &PendingEvent) -> bool {
    match &ev.kind {
        PendingKind::Message { from, handle: true, .. } => {
            session.is_broker_actor(*from) && session.is_broker_actor(ev.to)
        }
        _ => false,
    }
}

/// Tracks the exactly-one-reply obligation for every decoded RPC-kind
/// client request, online, as handles are dispatched.
struct ReplyObserver {
    /// Topic → protocol method kind, from the flux-proto registry.
    kinds: HashMap<&'static str, MethodKind>,
    /// Request id → replies seen, for RPC-kind client requests. Kept
    /// ordered so the first missing-reply violation reported is stable
    /// across runs of the same schedule.
    replies: BTreeMap<MsgId, u32>,
    /// Whether the schedule duplicates frames (dup'd requests can
    /// legitimately produce duplicate replies; the client core drops
    /// them, so the strict `== 1` check only holds dup-free).
    dups: bool,
}

impl ReplyObserver {
    fn new(dups: bool) -> ReplyObserver {
        ReplyObserver {
            kinds: flux_proto::methods().into_iter().map(|s| (s.topic, s.kind)).collect(),
            replies: BTreeMap::new(),
            dups,
        }
    }

    /// Observes a visible event right before it dispatches. Returns a
    /// violation when a client sees a second reply on a dup-free run.
    fn observe(&mut self, session: &SimSession, ev: &PendingEvent) -> Option<Violation> {
        let PendingKind::Message { from, handle: true, msg_type, topic, id } = &ev.kind else {
            return None;
        };
        match msg_type {
            MsgType::Request
                if !session.is_broker_actor(*from)
                    && session.is_broker_actor(ev.to)
                    && self.kinds.get(topic.as_str()) == Some(&MethodKind::Rpc) =>
            {
                self.replies.entry(*id).or_insert(0);
            }
            MsgType::Response if !session.is_broker_actor(ev.to) => {
                if let Some(count) = self.replies.get_mut(id) {
                    *count += 1;
                    if *count > 1 && !self.dups {
                        return Some(Violation {
                            kind: ViolationKind::DuplicateReply,
                            detail: format!("request {id:?} ({topic}) answered {count} times"),
                        });
                    }
                }
            }
            _ => {}
        }
        None
    }

    /// Post-quiescence check: every tracked request must have >= 1 reply.
    fn missing(&self) -> Option<Violation> {
        for (id, count) in &self.replies {
            if *count == 0 {
                return Some(Violation {
                    kind: ViolationKind::MissingReply,
                    detail: format!("request {id:?} never answered"),
                });
            }
        }
        None
    }
}

/// Runs `scenario` under `schedule` and checks all invariants.
pub fn run_schedule(scenario: &Scenario, schedule: &Schedule, cfg: &RunConfig) -> RunOutcome {
    let mut session = scenario.build();
    let handles: Vec<_> = scenario
        .scripts
        .iter()
        .map(|(rank, ops)| ScriptClient::spawn(&mut session, *rank, ops.clone()))
        .collect();

    let mut observer = ReplyObserver::new(schedule.dups() > 0);
    let mut steps: Vec<StepInfo> = Vec::new();
    let mut events: u64 = 0;
    let mut step: u32 = 0;
    let mut violation: Option<Violation> = None;
    let mut killed = false;

    'run: loop {
        // Failure injection happens before the snapshot, so the frontier
        // at this step already excludes deliveries to the dead broker.
        if let Some((rank, at)) = scenario.kill {
            if !killed && step >= at {
                session.kill_broker(rank);
                killed = true;
            }
        }
        // Auto-phase: drain invisible events in default order. Dispatching
        // from a snapshot is safe (pending seqs stay valid until
        // dispatched); newly created invisible events surface on the next
        // snapshot round. The first all-visible snapshot doubles as the
        // frontier source.
        let snapshot = loop {
            let snapshot = session.engine().pending_events();
            let auto: Vec<u64> =
                snapshot.iter().filter(|ev| !visible(ev)).map(|ev| ev.seq).collect();
            if auto.is_empty() {
                break snapshot;
            }
            for seq in auto {
                if events >= cfg.max_events {
                    violation = Some(livelock(events));
                    break 'run;
                }
                session.engine_mut().dispatch_pending(seq);
                events += 1;
            }
        };

        let frontier = eligible_frontier(snapshot);
        if frontier.is_empty() {
            break;
        }
        if events >= cfg.max_events {
            violation = Some(livelock(events));
            break;
        }

        steps.push(step_info(&session, &frontier));

        let pick = match schedule.at(step) {
            Some(Choice::Pick(n)) => {
                if n as usize >= frontier.len() {
                    return RunOutcome::invalid();
                }
                n as usize
            }
            Some(Choice::Dup(n)) => {
                let Some(target) = frontier.get(n as usize) else {
                    return RunOutcome::invalid();
                };
                if !dupable(&session, target) {
                    return RunOutcome::invalid();
                }
                let seq = target.seq;
                session.engine_mut().duplicate_pending(seq);
                0
            }
            None => 0,
        };

        let chosen = frontier[pick].clone();
        if let Some(v) = observer.observe(&session, &chosen) {
            violation = Some(v);
            break;
        }
        session.engine_mut().dispatch_pending(chosen.seq);
        events += 1;
        step += 1;
    }

    if violation.is_none() {
        violation = post_checks(scenario, &handles, &observer);
    }
    RunOutcome { valid: true, violation, steps, events }
}

fn livelock(events: u64) -> Violation {
    Violation {
        kind: ViolationKind::Livelock,
        detail: format!("event budget exhausted after {events} events"),
    }
}

fn step_info(session: &SimSession, frontier: &[PendingEvent]) -> StepInfo {
    let target = |ev: &PendingEvent| ev.to;
    let prunable = frontier
        .iter()
        .enumerate()
        .map(|(n, ev)| {
            // Picking slot n overtakes slots 0..n. If the chosen event's
            // target actor differs from every overtaken event's target,
            // the dispatches commute (actors share no state) and the
            // default order already covers this behaviour.
            n > 0 && frontier[..n].iter().all(|other| target(other) != target(ev))
        })
        .collect();
    let dupable = frontier.iter().map(|ev| dupable(session, ev)).collect();
    StepInfo { eligible: frontier.len() as u16, prunable, dupable }
}

/// Converts script outcome handles into transport-layer outcomes (the
/// shape `histories_for` consumes).
fn outcomes_of(handles: &[flux_rt::script::OutcomeHandle]) -> Vec<ScriptOutcome> {
    handles
        .iter()
        .map(|h| {
            let o = h.borrow();
            ScriptOutcome {
                op_done_ns: o.op_done.iter().map(|t| t.as_nanos()).collect(),
                op_err: o.op_err.clone(),
                replies: o.replies.clone(),
                finished: o.finished,
            }
        })
        .collect()
}

fn post_checks(
    scenario: &Scenario,
    handles: &[flux_rt::script::OutcomeHandle],
    observer: &ReplyObserver,
) -> Option<Violation> {
    let outcomes = outcomes_of(handles);

    for (i, outcome) in outcomes.iter().enumerate() {
        if !outcome.finished {
            let (rank, ops) = &scenario.scripts[i];
            return Some(Violation {
                kind: ViolationKind::Stalled,
                detail: format!(
                    "script {i} (rank {}) stalled at op {}/{} with the session quiet",
                    rank.0,
                    outcome.op_err.len(),
                    ops.len()
                ),
            });
        }
    }

    if let Some(v) = observer.missing() {
        return Some(v);
    }

    let errs = history::check(&histories_for(&scenario.scripts, &outcomes));
    if !errs.is_empty() {
        return Some(Violation { kind: ViolationKind::History, detail: errs.join("; ") });
    }

    if scenario.expected_applies > 0 {
        for (i, outcome) in outcomes.iter().enumerate() {
            for (op, (err, reply)) in scenario.scripts[i]
                .1
                .iter()
                .zip(outcome.op_err.iter().zip(outcome.replies.iter()))
            {
                if *err != 0 {
                    continue;
                }
                let versioned = matches!(
                    op,
                    flux_rt::script::Op::Commit
                        | flux_rt::script::Op::GetVersion
                        | flux_rt::script::Op::WaitVersion(_)
                        | flux_rt::script::Op::Fence { .. }
                );
                if !versioned {
                    continue;
                }
                if let Some(v) = reply.get("version").and_then(Value::as_uint) {
                    if v > scenario.expected_applies {
                        return Some(Violation {
                            kind: ViolationKind::VersionOverrun,
                            detail: format!(
                                "script {i} observed version {v} > {} expected root applies: \
                                 some batch applied twice",
                                scenario.expected_applies
                            ),
                        });
                    }
                }
            }
        }
    }

    if !scenario.post_fence.is_empty() {
        for (i, outcome) in outcomes.iter().enumerate() {
            let ops = &scenario.scripts[i].1;
            let fence_done = ops.iter().enumerate().find_map(|(j, op)| {
                matches!(op, flux_rt::script::Op::Fence { .. })
                    .then(|| outcome.op_err.get(j).copied() == Some(0))
                    .filter(|ok| *ok)
                    .map(|_| j)
            });
            let Some(fence_at) = fence_done else { continue };
            for (j, op) in ops.iter().enumerate().skip(fence_at + 1) {
                let flux_rt::script::Op::Get { key } = op else { continue };
                let Some(expect) = scenario.post_fence.get(key) else { continue };
                let Some(err) = outcome.op_err.get(j) else { continue };
                let observed = (*err == 0).then(|| outcome.replies[j].get("v").cloned());
                if observed.as_ref().and_then(|v| v.as_ref()) != Some(expect) {
                    return Some(Violation {
                        kind: ViolationKind::FenceIncomplete,
                        detail: format!(
                            "script {i} read {key:?} after its fence completed and saw \
                             {observed:?} instead of {expect:?}: the fence finished without \
                             all contributions"
                        ),
                    });
                }
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_clean_on_every_live_scenario() {
        for name in Scenario::clean_names() {
            let scenario = Scenario::by_name(name).expect("known");
            let out = run_schedule(&scenario, &Schedule::empty(), &RunConfig::default());
            assert!(out.valid);
            assert!(out.violation.is_none(), "{name}: {:?}", out.violation);
            assert!(!out.steps.is_empty());
            assert!(out.events > 0);
        }
    }

    #[test]
    fn infeasible_deviation_reports_invalid() {
        let scenario = Scenario::kvs_fence();
        let sched = Schedule::empty().extended(0, Choice::Pick(200));
        let out = run_schedule(&scenario, &sched, &RunConfig::default());
        assert!(!out.valid);
    }

    #[test]
    fn tiny_event_budget_reports_livelock() {
        let scenario = Scenario::kvs_fence();
        let out = run_schedule(&scenario, &Schedule::empty(), &RunConfig { max_events: 3 });
        assert!(out.valid);
        assert_eq!(out.violation.as_ref().map(|v| v.kind), Some(ViolationKind::Livelock));
    }
}
