//! Deterministic fault injection for every transport.
//!
//! A [`FaultPlan`] describes, from a single `u64` seed, everything that
//! can go wrong in a session: per-link message drops, delays (which also
//! reorder, since a delayed message lands behind later sends), and
//! duplicates, plus scheduled *blackouts* (a rank goes completely silent
//! for a window — the model of a crashed-then-restarted broker) and
//! *partitions* (a rank set is cut off from the rest for a window).
//!
//! The plan is pure data; each sending broker derives a [`LinkFaults`]
//! from it. Link decisions are drawn from an independent SplitMix64
//! stream per `(seed, from, to)` link, so the fate of the nth message on
//! a link is a pure function of the plan and the link — not of timing,
//! thread interleaving, or traffic on other links. On the simulator this
//! makes whole chaos runs bit-reproducible; on the live runtimes the
//! per-link decision *sequence* is identical even though wall-clock
//! arrival times are not.
//!
//! Windows (blackouts, partitions) are expressed in nanoseconds since
//! the session epoch: virtual time on the simulator, wall time on the
//! live runtimes. Helpers convert heartbeat-epoch windows using the
//! session's `hb_period_ns`.

use flux_core::rng::Rng;
use flux_wire::Rank;
use std::fmt;
use std::ops::Range;

/// One scheduled total-silence window for a rank: all of its inbound and
/// outbound traffic is dropped while `from_ns <= now < until_ns`. This is
/// how the fault layer models "kill broker at epoch A, restart at B" —
/// identical semantics on all three runtimes, no actor teardown needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blackout {
    /// The silenced rank.
    pub rank: Rank,
    /// Window start (ns since session epoch, inclusive).
    pub from_ns: u64,
    /// Window end (ns since session epoch, exclusive; `u64::MAX` = never
    /// restarts).
    pub until_ns: u64,
}

/// One scheduled partition: while active, messages crossing the boundary
/// between `group` and its complement are dropped in both directions.
/// Traffic within the group (and within the complement) is unaffected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Ranks on one side of the cut.
    pub group: Vec<Rank>,
    /// Window start (ns since session epoch, inclusive).
    pub from_ns: u64,
    /// Window end (ns since session epoch, exclusive).
    pub until_ns: u64,
}

/// A reproducible schedule of faults for one session, seeded by one u64.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all per-link random streams.
    pub seed: u64,
    /// Per-message drop probability, in parts per million.
    pub drop_ppm: u32,
    /// Per-message duplication probability, in parts per million.
    pub dup_ppm: u32,
    /// Per-message extra-delay probability, in parts per million.
    pub delay_ppm: u32,
    /// Upper bound on injected extra delay (uniform in `1..=max`).
    pub max_delay_ns: u64,
    /// Scheduled whole-rank silence windows.
    pub blackouts: Vec<Blackout>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
}

fn ppm(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1_000_000.0) as u32
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Sets the per-message drop probability (`0.0..=1.0`).
    pub fn drop(mut self, p: f64) -> FaultPlan {
        self.drop_ppm = ppm(p);
        self
    }

    /// Sets the per-message duplication probability (`0.0..=1.0`).
    pub fn duplicate(mut self, p: f64) -> FaultPlan {
        self.dup_ppm = ppm(p);
        self
    }

    /// Sets the per-message extra-delay probability and the delay bound.
    /// Delays are the reordering mechanism: a delayed message arrives
    /// after later undelayed traffic on the same link.
    pub fn delay(mut self, p: f64, max_ns: u64) -> FaultPlan {
        self.delay_ppm = ppm(p);
        self.max_delay_ns = max_ns.max(1);
        self
    }

    /// Silences `rank` over `window` (ns since session epoch).
    pub fn kill(mut self, rank: Rank, window: Range<u64>) -> FaultPlan {
        self.blackouts.push(Blackout { rank, from_ns: window.start, until_ns: window.end });
        self
    }

    /// Silences `rank` over a heartbeat-epoch window: epochs are
    /// converted with `hb_period_ns` (epoch `e` begins at `e * period`).
    pub fn kill_epochs(self, rank: Rank, epochs: Range<u64>, hb_period_ns: u64) -> FaultPlan {
        let from = epochs.start.saturating_mul(hb_period_ns);
        let until = epochs.end.saturating_mul(hb_period_ns);
        self.kill(rank, from..until)
    }

    /// Cuts `group` off from the rest of the session over `window`.
    pub fn partition(mut self, group: Vec<Rank>, window: Range<u64>) -> FaultPlan {
        self.partitions.push(Partition { group, from_ns: window.start, until_ns: window.end });
        self
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.delay_ppm == 0
            && self.blackouts.is_empty()
            && self.partitions.is_empty()
    }

    /// True if `rank` is inside a blackout window at `now_ns`.
    pub fn blacked_out(&self, rank: Rank, now_ns: u64) -> bool {
        self.blackouts
            .iter()
            .any(|b| b.rank == rank && b.from_ns <= now_ns && now_ns < b.until_ns)
    }

    /// True if an active partition separates `a` from `b` at `now_ns`.
    pub fn partitioned(&self, a: Rank, b: Rank, now_ns: u64) -> bool {
        self.partitions.iter().any(|p| {
            p.from_ns <= now_ns
                && now_ns < p.until_ns
                && p.group.contains(&a) != p.group.contains(&b)
        })
    }

    /// True if a message from `from` to `to` at `now_ns` is cut by a
    /// scheduled fault (blackout of either end, or a partition between
    /// them). Probabilistic faults are separate — see [`LinkFaults::fate`].
    pub fn cut(&self, from: Rank, to: Rank, now_ns: u64) -> bool {
        self.blacked_out(from, now_ns)
            || self.blacked_out(to, now_ns)
            || self.partitioned(from, to, now_ns)
    }

    /// The per-sender view of this plan, used by one broker (or client
    /// host) to decide the fate of each outbound message.
    pub fn for_sender(&self, from: Rank) -> LinkFaults {
        LinkFaults { from, plan: self.clone(), links: Vec::new() }
    }

    /// Parses `spec` (the part after the seed in `--faults seed:spec`).
    ///
    /// Comma-separated items:
    ///
    /// * `drop=P` — drop probability, e.g. `drop=0.01`
    /// * `dup=P` — duplication probability
    /// * `delay=P/DUR` — delay probability and bound, e.g. `delay=0.05/2ms`
    /// * `reorder=P/DUR` — alias for `delay` (delays are how reordering
    ///   is injected)
    /// * `kill=R@A..B` — silence rank `R` over heartbeat epochs `[A, B)`;
    ///   `kill=R@A` never restarts
    /// * `part=G@A..B` — partition the rank group `G` (ranks joined by
    ///   `+`, e.g. `0+3+7`) from the rest over epochs `[A, B)`
    ///
    /// Durations accept `ns`, `us`, `ms`, `s` suffixes (bare = ns).
    /// Epoch windows are converted to nanoseconds with `hb_period_ns`.
    pub fn parse(seed: u64, spec: &str, hb_period_ns: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) =
                item.split_once('=').ok_or_else(|| format!("fault item {item:?}: want key=value"))?;
            match key {
                "drop" => plan.drop_ppm = ppm(parse_prob(val)?),
                "dup" => plan.dup_ppm = ppm(parse_prob(val)?),
                "delay" | "reorder" => {
                    let (p, dur) = val
                        .split_once('/')
                        .ok_or_else(|| format!("{key}={val}: want {key}=P/DURATION"))?;
                    plan.delay_ppm = ppm(parse_prob(p)?);
                    plan.max_delay_ns = parse_duration_ns(dur)?.max(1);
                }
                "kill" => {
                    let (rank, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("kill={val}: want kill=RANK@A..B"))?;
                    let rank = Rank(parse_u64(rank)? as u32);
                    let (a, b) = parse_epoch_window(window)?;
                    plan = plan.kill_epochs(rank, a..b, hb_period_ns);
                }
                "part" => {
                    let (group, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("part={val}: want part=R+R+R@A..B"))?;
                    let group = group
                        .split('+')
                        .map(|r| parse_u64(r).map(|v| Rank(v as u32)))
                        .collect::<Result<Vec<_>, _>>()?;
                    let (a, b) = parse_epoch_window(window)?;
                    let from = a.saturating_mul(hb_period_ns);
                    let until = b.saturating_mul(hb_period_ns);
                    plan = plan.partition(group, from..until);
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Parses a full `seed:spec` string (the `--faults` flag form).
    pub fn parse_flag(flag: &str, hb_period_ns: u64) -> Result<FaultPlan, String> {
        let (seed, spec) = flag
            .split_once(':')
            .ok_or_else(|| format!("--faults {flag:?}: want SEED:spec (e.g. 7:drop=0.01)"))?;
        FaultPlan::parse(parse_u64(seed)?, spec, hb_period_ns)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} drop={}ppm dup={}ppm delay={}ppm/{}ns kills={} parts={}",
            self.seed,
            self.drop_ppm,
            self.dup_ppm,
            self.delay_ppm,
            self.max_delay_ns,
            self.blackouts.len(),
            self.partitions.len(),
        )
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {s:?} outside 0..=1"));
    }
    Ok(p)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim().parse().map_err(|_| format!("bad integer {s:?}"))
}

fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1)
    };
    Ok(parse_u64(num)?.saturating_mul(mult))
}

/// Parses `A..B` (epochs, end exclusive) or a bare `A` (no end).
fn parse_epoch_window(s: &str) -> Result<(u64, u64), String> {
    match s.split_once("..") {
        Some((a, b)) => Ok((parse_u64(a)?, parse_u64(b)?)),
        None => Ok((parse_u64(s)?, u64::MAX / 2)),
    }
}

/// The fate of one outbound message: how many copies to deliver and the
/// extra in-flight delay of each. Empty = dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fate {
    /// Extra delay (ns) per delivered copy; empty means the message is
    /// dropped.
    pub copies: Vec<u64>,
}

impl Fate {
    /// A fate that delivers the message untouched.
    pub fn intact() -> Fate {
        Fate { copies: vec![0] }
    }

    /// True if no copy is delivered.
    pub fn dropped(&self) -> bool {
        self.copies.is_empty()
    }
}

/// A sending rank's view of a [`FaultPlan`]: one deterministic random
/// stream per destination link, consulted for every outbound message.
#[derive(Clone, Debug)]
pub struct LinkFaults {
    from: Rank,
    plan: FaultPlan,
    /// Per-destination streams, indexed by destination rank; grown
    /// lazily. Seeded from `(plan.seed, from, to)` only, so the stream
    /// does not depend on when the link first carries traffic.
    links: Vec<Option<Rng>>,
}

/// Mixes a link identity into the plan seed (SplitMix64 finalizer, so
/// nearby `(from, to)` pairs get unrelated streams).
fn link_seed(seed: u64, from: Rank, to: Rank) -> u64 {
    let mut z = seed ^ (u64::from(from.0) << 32) ^ u64::from(to.0) ^ 0x6a09_e667_f3bc_c909;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl LinkFaults {
    /// The rank whose outbound traffic this instance governs.
    pub fn sender(&self) -> Rank {
        self.from
    }

    /// The plan this view was derived from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if the sender itself is inside a blackout window: it must
    /// neither send nor process anything (the "crashed" state).
    pub fn silenced(&self, now_ns: u64) -> bool {
        self.plan.blacked_out(self.from, now_ns)
    }

    /// Decides the fate of the next outbound message to `to` at `now_ns`.
    /// Consumes one slice of the link's random stream; call exactly once
    /// per message, in send order, for reproducible decisions.
    pub fn fate(&mut self, now_ns: u64, to: Rank) -> Fate {
        self.fate_on(now_ns, to, false)
    }

    /// Like [`LinkFaults::fate`] for a plane that requires per-link FIFO
    /// ordering (the event plane: its at-most-once sequence dedup means a
    /// reordered event is lost forever, which production links — TCP
    /// streams — never do). Injected delays are suppressed; drops,
    /// duplicates, blackouts, and partitions still apply. Consumes the
    /// same random draws as `fate`, so a link's stream does not depend on
    /// the plane mix of its traffic.
    pub fn fate_ordered(&mut self, now_ns: u64, to: Rank) -> Fate {
        self.fate_on(now_ns, to, true)
    }

    fn fate_on(&mut self, now_ns: u64, to: Rank, ordered: bool) -> Fate {
        if self.plan.cut(self.from, to, now_ns) {
            return Fate::default();
        }
        if self.plan.drop_ppm == 0 && self.plan.dup_ppm == 0 && self.plan.delay_ppm == 0 {
            return Fate::intact();
        }
        let idx = to.index();
        if idx >= self.links.len() {
            self.links.resize(idx + 1, None);
        }
        let seed = link_seed(self.plan.seed, self.from, to);
        let rng = self.links[idx].get_or_insert_with(|| Rng::seeded(seed));
        if self.plan.drop_ppm > 0 && rng.gen_range(0u32..1_000_000) < self.plan.drop_ppm {
            return Fate::default();
        }
        let mut copies = Vec::with_capacity(1);
        let delay = |rng: &mut Rng, plan: &FaultPlan| {
            if plan.delay_ppm > 0 && rng.gen_range(0u32..1_000_000) < plan.delay_ppm {
                rng.gen_range(1..=plan.max_delay_ns)
            } else {
                0
            }
        };
        copies.push(delay(rng, &self.plan));
        if self.plan.dup_ppm > 0 && rng.gen_range(0u32..1_000_000) < self.plan.dup_ppm {
            copies.push(delay(rng, &self.plan));
        }
        if ordered {
            copies.fill(0);
        }
        Fate { copies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan::new(42).drop(0.2).duplicate(0.1).delay(0.3, 1_000_000);
        let run = || {
            let mut lf = plan.for_sender(Rank(3));
            (0..200).map(|i| lf.fate(i * 1000, Rank(i as u32 % 5))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn links_are_independent_streams() {
        let plan = FaultPlan::new(7).drop(0.5);
        // Interleaving traffic on link B must not change link A's stream.
        let mut only_a = plan.for_sender(Rank(0));
        let a_alone: Vec<_> = (0..100).map(|_| only_a.fate(0, Rank(1))).collect();
        let mut mixed = plan.for_sender(Rank(0));
        let mut a_mixed = Vec::new();
        for _ in 0..100 {
            a_mixed.push(mixed.fate(0, Rank(1)));
            let _ = mixed.fate(0, Rank(2));
        }
        assert_eq!(a_alone, a_mixed);
    }

    #[test]
    fn no_faults_is_always_intact() {
        let mut lf = FaultPlan::new(1).for_sender(Rank(0));
        for i in 0..50 {
            assert_eq!(lf.fate(i, Rank(1)), Fate::intact());
        }
    }

    #[test]
    fn blackout_cuts_both_directions_within_window() {
        let plan = FaultPlan::new(0).kill(Rank(2), 100..200);
        let from_victim = plan.for_sender(Rank(2));
        let mut to_victim = plan.for_sender(Rank(0));
        assert!(from_victim.silenced(150));
        assert!(!from_victim.silenced(99));
        assert!(!from_victim.silenced(200)); // end exclusive: restarted
        assert!(to_victim.fate(150, Rank(2)).dropped());
        assert_eq!(to_victim.fate(250, Rank(2)), Fate::intact());
    }

    #[test]
    fn partition_cuts_only_across_the_boundary() {
        let plan = FaultPlan::new(0).partition(vec![Rank(0), Rank(1)], 0..1000);
        let mut inside = plan.for_sender(Rank(0));
        assert_eq!(inside.fate(10, Rank(1)), Fate::intact()); // same side
        assert!(inside.fate(10, Rank(2)).dropped()); // across
        let mut outside = plan.for_sender(Rank(3));
        assert!(outside.fate(10, Rank(1)).dropped()); // across, reverse
        assert_eq!(outside.fate(10, Rank(2)), Fate::intact()); // same side
        assert_eq!(outside.fate(2000, Rank(1)), Fate::intact()); // healed
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let plan = FaultPlan::new(99).drop(0.25);
        let mut lf = plan.for_sender(Rank(0));
        let dropped = (0..4000).filter(|_| lf.fate(0, Rank(1)).dropped()).count();
        assert!((800..1200).contains(&dropped), "dropped {dropped}/4000 at p=0.25");
    }

    #[test]
    fn spec_parser_round_trips() {
        let hb = 100_000_000; // 100ms
        let plan =
            FaultPlan::parse(7, "drop=0.01, dup=0.002, delay=0.05/2ms, kill=5@6..14", hb).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_ppm, 10_000);
        assert_eq!(plan.dup_ppm, 2_000);
        assert_eq!(plan.delay_ppm, 50_000);
        assert_eq!(plan.max_delay_ns, 2_000_000);
        assert_eq!(
            plan.blackouts,
            vec![Blackout { rank: Rank(5), from_ns: 6 * hb, until_ns: 14 * hb }]
        );
    }

    #[test]
    fn spec_parser_partitions_and_reorder_alias() {
        let plan = FaultPlan::parse(1, "reorder=0.1/500us, part=0+2+4@3..9", 1_000).unwrap();
        assert_eq!(plan.delay_ppm, 100_000);
        assert_eq!(plan.max_delay_ns, 500_000);
        assert_eq!(
            plan.partitions,
            vec![Partition {
                group: vec![Rank(0), Rank(2), Rank(4)],
                from_ns: 3_000,
                until_ns: 9_000,
            }]
        );
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        assert!(FaultPlan::parse(0, "drop=2.0", 1).is_err());
        assert!(FaultPlan::parse(0, "nope=1", 1).is_err());
        assert!(FaultPlan::parse(0, "kill=5", 1).is_err());
        assert!(FaultPlan::parse_flag("no-seed-here", 1).is_err());
        assert!(FaultPlan::parse_flag("9:drop=0.5", 1).is_ok());
    }
}
