//! The poll-based reactor behind [`crate::tcp`]: one thread per broker,
//! every socket nonblocking, readiness discovered by level-triggered
//! scanning (ROADMAP item 3).
//!
//! ## Shape
//!
//! `#![forbid(unsafe_code)]` rules out a raw `poll(2)`/`epoll` wrapper,
//! so the reactor uses the portable safe equivalent: every stream and
//! the listener run with `set_nonblocking(true)`, and one loop per
//! broker drains whatever is ready — `WouldBlock` means "move on". When
//! a full pass makes no progress the loop parks in the broker's command
//! channel (`recv_timeout`), which doubles as the timer/fault-release
//! alarm; the park duration backs off adaptively so an idle broker costs
//! a few wakeups per second while an active one spins at full rate.
//!
//! ## State machines
//!
//! *Inbound* connections (accepted from the listener) step through
//! `Handshake → Broker | Client`: four raw little-endian bytes name the
//! peer — a rank below the session size for a broker link, the
//! [`crate::tcp::CLIENT_HELLO`] sentinel for a socket client, anything
//! else is dropped. Frames then reassemble through
//! [`flux_wire::frame::FrameDecoder`], which tolerates arbitrary tearing
//! (a frame may arrive one byte at a time). Socket clients are assigned
//! a broker-local client id on arrival, echoed back as four raw LE bytes
//! before any frames, so their [`flux_broker::client::ClientCore`] mints
//! collision-free request ids.
//!
//! *Outbound* broker→broker traffic rides a small pool of connections
//! per destination ([`crate::tcp::TcpConfig::pool_size`]): the event
//! plane is pinned to slot 0 — its seq-dedup requires per-link FIFO —
//! while tree/ring traffic round-robins the remaining slots, so bulk
//! frames cannot head-of-line-block liveness events. Writes buffer in a
//! per-connection out-queue flushed to `WouldBlock` each pass; connects
//! and reconnects follow the nonblocking
//! [`crate::tcp::RetrySchedule`] (jittered exponential backoff, never a
//! sleep).

use crate::live::{BrokerHost, Event};
use crate::tcp::{RetrySchedule, TcpConfig, CLIENT_HELLO};
use flux_broker::ClientId;
use flux_core::rng::Rng;
use flux_wire::frame::{self, FrameDecoder};
use flux_wire::{Message, Plane, Rank};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

/// Bytes read from a ready stream per `read()` call.
const READ_CHUNK: usize = 16 * 1024;

/// Chunks read from one connection per pass before yielding to the next
/// (fairness under a firehose peer).
const READS_PER_PASS: usize = 4;

/// Connections accepted per pass.
const ACCEPTS_PER_PASS: usize = 128;

/// Flushes `buf[*sent..]` into a nonblocking stream. Returns whether any
/// bytes moved; resets the buffer once fully drained.
fn flush_buf(stream: &mut TcpStream, buf: &mut Vec<u8>, sent: &mut usize) -> io::Result<bool> {
    let mut progressed = false;
    while *sent < buf.len() {
        match stream.write(&buf[*sent..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                *sent += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if *sent == buf.len() && !buf.is_empty() {
        buf.clear();
        *sent = 0;
    }
    Ok(progressed)
}

/// Where an inbound connection is in its lifecycle.
enum ConnState {
    /// Collecting the 4-byte peer-identification prefix.
    Handshake { got: usize, raw: [u8; 4] },
    /// An attributed broker→broker link.
    Broker(Rank),
    /// A socket client with its assigned broker-local id.
    Client(ClientId),
}

/// One accepted connection: read state machine + buffered writes.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    decoder: FrameDecoder,
    out: Vec<u8>,
    sent: usize,
    opened: Instant,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: ConnState::Handshake { got: 0, raw: [0; 4] },
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            sent: 0,
            opened: Instant::now(),
            dead: true, // armed by the caller once setup succeeds
        }
    }
}

/// One slot of an outbound pool: a lazily-(re)connected nonblocking
/// stream with its write queue and retry schedule. The 4 handshake bytes
/// are staged separately so they always precede queued frames on a fresh
/// connection.
struct Uplink {
    stream: Option<TcpStream>,
    hs: [u8; 4],
    hs_left: usize,
    out: Vec<u8>,
    sent: usize,
    retry: RetrySchedule,
}

impl Uplink {
    fn new(rank: Rank) -> Uplink {
        Uplink {
            stream: None,
            hs: rank.0.to_le_bytes(),
            hs_left: 0,
            out: Vec::new(),
            sent: 0,
            retry: RetrySchedule::new(),
        }
    }

    /// Drops the stream and every queued byte (a reconnected stream
    /// cannot resume mid-frame), leaving the retry schedule as-is.
    fn reset(&mut self) {
        self.stream = None;
        self.hs_left = 0;
        self.out.clear();
        self.sent = 0;
    }

    fn try_connect(&mut self, addr: SocketAddr, config: &TcpConfig, jitter: &mut Rng) {
        if self.stream.is_some() || !self.retry.due(Instant::now()) {
            return;
        }
        // `connect_timeout` is bounded by the configured per-attempt
        // deadline; on loopback it resolves immediately either way.
        match TcpStream::connect_timeout(&addr, config.connect_timeout) {
            Ok(stream) => {
                if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                    self.record_failure(config, jitter);
                    return;
                }
                self.stream = Some(stream);
                self.hs_left = 4;
                self.retry.succeeded();
            }
            Err(_) => self.record_failure(config, jitter),
        }
    }

    fn record_failure(&mut self, config: &TcpConfig, jitter: &mut Rng) {
        if !self.retry.failed(Instant::now(), config, jitter) {
            // Burst budget spent: this peer is gone for now. Queued
            // frames are dropped — the liveness layer repairs overlay
            // routes, the transport does not queue forever.
            self.out.clear();
            self.sent = 0;
        }
    }

    /// Flushes handshake bytes then queued frames. On a write error the
    /// link resets and the frames are dropped (same contract as the
    /// pre-reactor transport: a dead link loses what was in flight).
    fn flush(&mut self) -> bool {
        let Some(stream) = self.stream.as_mut() else { return false };
        let mut progressed = false;
        while self.hs_left > 0 {
            match stream.write(&self.hs[4 - self.hs_left..]) {
                Ok(0) => {
                    self.reset();
                    return progressed;
                }
                Ok(n) => {
                    self.hs_left -= n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progressed,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.reset();
                    return progressed;
                }
            }
        }
        match flush_buf(stream, &mut self.out, &mut self.sent) {
            Ok(p) => progressed || p,
            Err(_) => {
                self.reset();
                progressed
            }
        }
    }
}

/// All sockets of one broker: the listener, accepted connections
/// (broker links and socket clients), and the per-destination outbound
/// pools. Implements [`crate::live::PeerSender`] so the shared
/// [`BrokerHost`] routes outputs through it.
pub(crate) struct ReactorPeers {
    size: u32,
    addrs: Vec<SocketAddr>,
    listener: TcpListener,
    config: TcpConfig,
    /// `uplinks[to] = pool` for each destination rank.
    uplinks: Vec<Vec<Uplink>>,
    /// Round-robin cursor over the bulk (non-event) pool slots.
    next_bulk: usize,
    /// Accepted-connection slab; `None` slots are free.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Socket-client id → slab index.
    client_conn: HashMap<ClientId, usize>,
    /// Next socket-client id (starts above the channel-attached range).
    next_client: ClientId,
    /// Encode scratch shared by every outbound frame.
    scratch: Vec<u8>,
    /// Read scratch shared by every connection.
    read_buf: Vec<u8>,
    /// Backoff jitter (decorrelates concurrent retriers; never replayed).
    jitter: Rng,
}

impl ReactorPeers {
    pub(crate) fn new(
        rank: Rank,
        addrs: Vec<SocketAddr>,
        listener: TcpListener,
        config: TcpConfig,
        first_socket_client: ClientId,
    ) -> io::Result<ReactorPeers> {
        listener.set_nonblocking(true)?;
        let size = addrs.len() as u32;
        let pool = config.pool_size.max(1);
        let clock_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Ok(ReactorPeers {
            size,
            addrs,
            listener,
            config,
            uplinks: (0..size).map(|_| (0..pool).map(|_| Uplink::new(rank)).collect()).collect(),
            next_bulk: 0,
            conns: Vec::new(),
            free: Vec::new(),
            client_conn: HashMap::new(),
            next_client: first_socket_client,
            scratch: Vec::with_capacity(256),
            read_buf: vec![0u8; READ_CHUNK],
            jitter: Rng::seeded(clock_seed ^ (u64::from(rank.0) << 32)),
        })
    }

    /// Queues `msg` on the pool slot for `(to, plane)`. Event-plane
    /// traffic is pinned to slot 0 (per-link FIFO); everything else
    /// round-robins the remaining slots.
    fn queue_to(&mut self, to: Rank, plane: Plane, msg: &Message) {
        let pool_len = self.uplinks[to.index()].len();
        let slot = if pool_len == 1 || matches!(plane, Plane::Event) {
            0
        } else {
            self.next_bulk = self.next_bulk.wrapping_add(1);
            1 + self.next_bulk % (pool_len - 1)
        };
        let link = &mut self.uplinks[to.index()][slot];
        if link.stream.is_none() {
            let addr = self.addrs[to.index()];
            link.try_connect(addr, &self.config, &mut self.jitter);
            if link.stream.is_none() {
                return; // unreachable right now: dropped, liveness repairs
            }
        }
        if link.out.len() - link.sent > self.config.max_outbuf {
            return; // backpressure: peer too far behind, drop the frame
        }
        let _ = frame::write_frame_into(&mut link.out, msg, self.config.max_frame, &mut self.scratch);
        let _ = link.flush();
    }

    /// One readiness pass: due reconnects, accepts, reads (decoded
    /// frames land in `batch`), and write flushes. Returns whether any
    /// I/O progressed.
    pub(crate) fn poll_io(&mut self, batch: &mut Vec<Event>) -> bool {
        let mut progress = false;
        progress |= self.service_uplinks();
        progress |= self.accept_ready();
        progress |= self.read_ready(batch);
        progress |= self.flush_conns();
        progress
    }

    /// Reconnects pools whose retry came due and flushes pending bytes.
    fn service_uplinks(&mut self) -> bool {
        let mut progress = false;
        for to in 0..self.uplinks.len() {
            let addr = self.addrs[to];
            for slot in 0..self.uplinks[to].len() {
                let link = &mut self.uplinks[to][slot];
                if link.stream.is_none() && !link.out.is_empty() {
                    link.try_connect(addr, &self.config, &mut self.jitter);
                }
                if link.stream.is_some() && (link.hs_left > 0 || link.out.len() > link.sent) {
                    progress |= link.flush();
                }
            }
        }
        progress
    }

    fn accept_ready(&mut self) -> bool {
        let mut progress = false;
        for _ in 0..ACCEPTS_PER_PASS {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    let mut conn = Conn::new(stream);
                    if conn.stream.set_nonblocking(true).is_ok() {
                        let _ = conn.stream.set_nodelay(true);
                        conn.dead = false;
                        match self.free.pop() {
                            Some(i) => self.conns[i] = Some(conn),
                            None => self.conns.push(Some(conn)),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        progress
    }

    /// Reads every connection with ready bytes, stepping handshakes and
    /// decoding frames into `batch`.
    fn read_ready(&mut self, batch: &mut Vec<Event>) -> bool {
        let mut progress = false;
        let mut chunk = std::mem::take(&mut self.read_buf);
        for i in 0..self.conns.len() {
            // Take the connection out of its slot so handshake completion
            // can borrow `self` (id assignment) without aliasing.
            let Some(mut conn) = self.conns[i].take() else { continue };
            progress |= self.service_conn(&mut conn, &mut chunk, batch);
            if conn.dead {
                if let ConnState::Client(id) = conn.state {
                    self.client_conn.remove(&id);
                }
                self.free.push(i);
            } else {
                if let ConnState::Client(id) = conn.state {
                    self.client_conn.insert(id, i);
                }
                self.conns[i] = Some(conn);
            }
        }
        self.read_buf = chunk;
        progress
    }

    /// Reads one connection to `WouldBlock` (bounded per pass), feeding
    /// the handshake then the frame decoder.
    fn service_conn(&mut self, conn: &mut Conn, chunk: &mut [u8], batch: &mut Vec<Event>) -> bool {
        // A half-open peer that never finishes identifying itself is
        // dropped at the handshake deadline.
        if matches!(conn.state, ConnState::Handshake { .. })
            && conn.opened.elapsed() > self.config.handshake_timeout
        {
            conn.dead = true;
            return false;
        }
        let mut progress = false;
        for _ in 0..READS_PER_PASS {
            let n = match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.dead = true; // clean EOF
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            };
            progress = true;
            let mut bytes = &chunk[..n];
            if let ConnState::Handshake { got, raw } = &mut conn.state {
                let take = bytes.len().min(4 - *got);
                raw[*got..*got + take].copy_from_slice(&bytes[..take]);
                *got += take;
                bytes = &bytes[take..];
                if *got == 4 {
                    let id = u32::from_le_bytes(*raw);
                    if id == CLIENT_HELLO {
                        let assigned = self.next_client;
                        self.next_client += 1;
                        conn.state = ConnState::Client(assigned);
                        // Echo the assigned id (4 raw LE bytes) ahead of
                        // any frames so the client can namespace its
                        // request ids.
                        conn.out.extend_from_slice(&assigned.to_le_bytes());
                    } else if id < self.size {
                        conn.state = ConnState::Broker(Rank(id));
                    } else {
                        conn.dead = true; // garbage handshake
                        break;
                    }
                }
            }
            if !bytes.is_empty() {
                conn.decoder.feed(bytes);
            }
            loop {
                match conn.decoder.next_message(self.config.max_frame) {
                    Ok(Some(msg)) => match conn.state {
                        ConnState::Broker(from) => batch.push(Event::FromBroker { from, msg }),
                        ConnState::Client(client) => {
                            batch.push(Event::FromClient { client, msg })
                        }
                        // Unreachable: bytes are only fed post-handshake.
                        ConnState::Handshake { .. } => {}
                    },
                    Ok(None) => break,
                    Err(_) => {
                        // Unframeable stream: resynchronization is
                        // impossible, drop the connection.
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead || n < chunk.len() {
                break; // drained (short read) or condemned
            }
        }
        progress
    }

    /// Flushes buffered writes on accepted connections.
    fn flush_conns(&mut self) -> bool {
        let mut progress = false;
        for i in 0..self.conns.len() {
            let Some(conn) = self.conns[i].as_mut() else { continue };
            if conn.out.len() > conn.sent {
                match flush_buf(&mut conn.stream, &mut conn.out, &mut conn.sent) {
                    Ok(p) => progress |= p,
                    Err(_) => {
                        let dead = self.conns[i].take();
                        if let Some(c) = dead {
                            if let ConnState::Client(id) = c.state {
                                self.client_conn.remove(&id);
                            }
                        }
                        self.free.push(i);
                    }
                }
            }
        }
        progress
    }

    /// How long the reactor may park given `idle_streak` consecutive
    /// no-progress passes: the configured poll interval, backed off
    /// exponentially to the idle ceiling.
    pub(crate) fn park_budget(&self, idle_streak: u32) -> Duration {
        let base = self.config.poll_interval.max(Duration::from_micros(50));
        let scaled = base.saturating_mul(1u32 << idle_streak.min(10));
        scaled.min(self.config.max_poll_interval)
    }

    /// Closes every socket (best-effort final flush first).
    pub(crate) fn close_all(&mut self) {
        for pool in &mut self.uplinks {
            for link in pool {
                link.flush();
                if let Some(stream) = link.stream.take() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        for conn in self.conns.iter_mut().filter_map(Option::take) {
            let mut conn = conn;
            let _ = flush_buf(&mut conn.stream, &mut conn.out, &mut conn.sent);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        self.client_conn.clear();
    }
}

impl crate::live::PeerSender for ReactorPeers {
    fn send_to(&mut self, to: Rank, plane: Plane, msg: Message) {
        self.queue_to(to, plane, &msg);
    }

    fn deliver_client(&mut self, client: ClientId, msg: Message) -> bool {
        let Some(&slot) = self.client_conn.get(&client) else {
            // Disconnected (or never existed): the reply has nowhere to
            // go. Report handled so the host does not retry.
            return true;
        };
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if conn.out.len() - conn.sent <= self.config.max_outbuf {
                let _ =
                    frame::write_frame_into(&mut conn.out, &msg, self.config.max_frame, &mut self.scratch);
            }
        }
        true
    }

    fn close(&mut self) {
        self.close_all();
    }
}

/// The reactor event loop: drives the shared [`BrokerHost`] steps
/// (timers, fault releases, channel events) interleaved with socket
/// readiness passes, parking only when a full pass made no progress.
pub(crate) fn run_reactor(mut host: BrokerHost<ReactorPeers>) {
    host.start_broker();
    let mut batch: Vec<Event> = Vec::new();
    let mut idle_streak: u32 = 0;
    'outer: loop {
        host.service_timers();
        host.release_delayed();
        // Drain the command channel (local clients, shutdown).
        let mut channel_work = false;
        loop {
            match host.rx.try_recv() {
                Ok(ev) => {
                    channel_work = true;
                    if !host.handle_event(ev) {
                        break 'outer;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        // Socket readiness: accept, read, reconnect, flush.
        let io_progress = host.peers.poll_io(&mut batch);
        let had_frames = !batch.is_empty();
        for ev in batch.drain(..) {
            if !host.handle_event(ev) {
                break 'outer;
            }
        }
        if had_frames || channel_work {
            // Replies produced this pass should hit the wire now, not a
            // park later.
            host.peers.poll_io(&mut batch);
            for ev in batch.drain(..) {
                if !host.handle_event(ev) {
                    break 'outer;
                }
            }
        }
        if io_progress || had_frames || channel_work {
            idle_streak = 0;
            continue;
        }
        // Nothing moved: park in the channel until the next deadline or
        // the (backed-off) poll tick.
        idle_streak = idle_streak.saturating_add(1);
        let budget = host.peers.park_budget(idle_streak);
        let timeout = match host.next_deadline() {
            Some(at) => at.saturating_duration_since(Instant::now()).min(budget),
            None => budget,
        };
        match host.rx.recv_timeout(timeout) {
            Ok(ev) => {
                idle_streak = 0;
                if !host.handle_event(ev) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    host.peers.close_all();
}
