//! Comms sessions over real loopback TCP sockets.
//!
//! The closest live analogue of the prototype's ØMQ TCP overlay: one
//! broker thread per rank as in [`crate::threads`], but broker↔broker
//! traffic rides genuine `TcpStream`s carrying length-prefixed
//! [`flux_wire`] frames ([`flux_wire::frame`]). Clients remain
//! in-process channel attachments (the prototype's local IPC sockets).
//!
//! Wire-up: every rank binds a listener on `127.0.0.1:0` *before* any
//! broker starts, so the full address map is known up front — the moral
//! equivalent of the paper's PMI exchange of broker endpoints. Outbound
//! links are established lazily on first send, with bounded
//! connect-retry and exponential backoff to ride out peers that are
//! still starting. Each direction of a broker pair is its own
//! connection; a link opens with a 4-byte little-endian rank handshake
//! so the accepting side can attribute inbound frames.
//!
//! Shutdown is ordered: brokers stop (dropping outbound links), peers'
//! reader threads drain to EOF, acceptors are woken by a local connect
//! and exit, and every thread is joined before `shutdown()` returns.

use crate::faults::FaultPlan;
use crate::live::{BrokerHost, Event, LiveClient, PeerSender};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule};
use flux_core::rng::Rng;
use flux_wire::{frame, Message, Rank};
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use flux_core::OrderedMutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for TCP links.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Connect attempts per link before giving up (≥ 1).
    pub max_connect_attempts: u32,
    /// Backoff before the second connect attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Total time budget across all connect attempts for one link: once
    /// exceeded, [`connect_with_retry`] stops retrying and surfaces the
    /// last error even if attempts remain.
    pub retry_deadline: Duration,
    /// Read timeout for the rank handshake on accepted connections
    /// (guards against a connector that never identifies itself).
    pub handshake_timeout: Duration,
    /// Size cap on a single frame, bytes (see [`frame::MAX_FRAME`]).
    pub max_frame: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(5),
            max_connect_attempts: 6,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            retry_deadline: Duration::from_secs(15),
            handshake_timeout: Duration::from_secs(5),
            max_frame: frame::MAX_FRAME,
        }
    }
}

/// Connects to `addr`, retrying with jittered exponential backoff per
/// the config. Each sleep is uniform in `[backoff/2, backoff]` so a
/// session's worth of brokers retrying the same slow peer don't
/// synchronize into connect storms.
///
/// # Errors
/// Returns the last connect error once `max_connect_attempts` attempts
/// have failed or the total `retry_deadline` budget is spent, whichever
/// comes first.
pub fn connect_with_retry(addr: SocketAddr, config: &TcpConfig) -> io::Result<TcpStream> {
    let attempts = config.max_connect_attempts.max(1);
    let started = Instant::now();
    let deadline = started + config.retry_deadline;
    // Jitter only needs to decorrelate concurrent retriers, not be
    // reproducible, so seed from the clock and the target port.
    let clock_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    let mut rng = Rng::seeded(clock_seed ^ (u64::from(addr.port()) << 32));
    let mut backoff = config.initial_backoff;
    let mut last_err = None;
    let mut made = 0u32;
    for attempt in 0..attempts {
        if attempt > 0 {
            let base = backoff.as_nanos() as u64;
            let sleep = Duration::from_nanos(base / 2 + rng.gen_range(0..=base.div_ceil(2)));
            if Instant::now() + sleep >= deadline {
                break; // budget would be spent sleeping; give up now
            }
            // flux-lint: allow(block) — connect retry/backoff runs on
            // the connecting thread during session bring-up, before any
            // reactor loop exists; the deadline above bounds it.
            std::thread::sleep(sleep);
            backoff = (backoff * 2).min(config.max_backoff);
        }
        let per_attempt = config.connect_timeout.min(deadline.saturating_duration_since(Instant::now()));
        if per_attempt.is_zero() {
            break;
        }
        made += 1;
        match TcpStream::connect_timeout(&addr, per_attempt) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(match last_err {
        Some(e) => io::Error::new(
            e.kind(),
            format!(
                "connect to {addr} failed after {made} attempt(s) over {:?}: {e}",
                started.elapsed()
            ),
        ),
        None => io::Error::new(
            io::ErrorKind::TimedOut,
            format!("connect to {addr}: retry budget {:?} spent before any attempt", config.retry_deadline),
        ),
    })
}

/// Outbound TCP links of one broker: lazily connected, retried once
/// (with the full backoff schedule) on a mid-session write failure.
struct TcpPeers {
    rank: Rank,
    addrs: Vec<SocketAddr>,
    links: Vec<Option<TcpStream>>,
    config: TcpConfig,
    /// Encode scratch reused across every outbound frame on this
    /// broker's links (allocation-lean framing).
    scratch: Vec<u8>,
}

impl TcpPeers {
    fn open_link(&self, to: Rank) -> io::Result<TcpStream> {
        let mut stream = connect_with_retry(self.addrs[to.index()], &self.config)?;
        stream.set_nodelay(true)?;
        // Identify ourselves so the acceptor can attribute our frames.
        stream.write_all(&self.rank.0.to_le_bytes())?;
        Ok(stream)
    }

    fn try_send(&mut self, to: Rank, msg: &Message) -> io::Result<()> {
        if self.links[to.index()].is_none() {
            let link = self.open_link(to)?;
            self.links[to.index()] = Some(link);
        }
        match self.links[to.index()].as_mut() {
            Some(stream) => {
                frame::write_frame_into(stream, msg, self.config.max_frame, &mut self.scratch)
            }
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "peer link missing")),
        }
    }
}

impl PeerSender for TcpPeers {
    fn send_to(&mut self, to: Rank, msg: Message) {
        if self.try_send(to, &msg).is_err() {
            // The link may have died mid-session; rebuild it once and
            // retry. A second failure drops the message — overlay peers
            // are expected to be repaired by the liveness layer, not the
            // transport.
            self.links[to.index()] = None;
            let _ = self.try_send(to, &msg);
        }
    }

    fn close(&mut self) {
        for link in self.links.iter_mut().filter_map(Option::take) {
            let _ = link.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Reads the 4-byte little-endian rank handshake.
fn read_handshake(stream: &mut TcpStream, timeout: Duration) -> io::Result<Rank> {
    stream.set_read_timeout(Some(timeout))?;
    let mut raw = [0u8; 4];
    stream.read_exact(&mut raw)?;
    stream.set_read_timeout(None)?;
    Ok(Rank(u32::from_le_bytes(raw)))
}

/// Accept loop for one rank's listener: handshakes each inbound link and
/// spawns a reader thread that feeds decoded frames into the broker.
fn accept_loop(
    listener: TcpListener,
    size: u32,
    tx: Sender<Event>,
    config: TcpConfig,
    stopping: Arc<AtomicBool>,
    readers: Arc<OrderedMutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let Ok((mut stream, _)) = listener.accept() else { break };
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(from) = read_handshake(&mut stream, config.handshake_timeout) else {
            continue; // never identified itself; drop the connection
        };
        if from.0 >= size {
            continue; // garbage handshake claiming an out-of-range rank
        }
        let tx = tx.clone();
        let max_frame = config.max_frame;
        let handle = std::thread::Builder::new()
            .name(format!("flux-tcp-read-{}", from.0))
            .spawn(move || {
                let mut stream = stream;
                // One body buffer serves every frame on this link.
                let mut body = Vec::new();
                // Clean EOF, a malformed frame, or a dead socket all end
                // this link; the peer reconnects if it has more to say.
                // flux-lint: allow(block) — dedicated reader thread per
                // link, the thread-per-link edge ROADMAP item 3's poll
                // reactor replaces; blocking here parks only this link.
                while let Ok(Some(msg)) = frame::read_frame_into(&mut stream, max_frame, &mut body)
                {
                    if tx.send(Event::FromBroker { from, msg }).is_err() {
                        break; // broker gone
                    }
                }
            });
        let Ok(handle) = handle else { continue }; // thread limit hit; drop the link
        // OrderedMutex absorbs poisoning: another reader panicking
        // while registering leaves the list itself usable.
        readers.lock().push(handle);
    }
}

/// A client connection to a broker in a [`TcpSession`].
pub type TcpClient = LiveClient;

/// A comms session whose brokers are wired over loopback TCP: call
/// [`TcpSession::builder`], attach clients, then
/// [`TcpSessionBuilder::start`].
pub struct TcpSession {
    size: u32,
    addrs: Vec<SocketAddr>,
    senders: Vec<Sender<Event>>,
    broker_handles: Vec<std::thread::JoinHandle<()>>,
    acceptor_handles: Vec<std::thread::JoinHandle<()>>,
    readers: Arc<OrderedMutex<Vec<std::thread::JoinHandle<()>>>>,
    stopping: Arc<AtomicBool>,
}

/// Builder collecting brokers and client attachments before the session
/// goes live.
pub struct TcpSessionBuilder {
    config: TcpConfig,
    configs: Vec<BrokerConfig>,
    modules: Vec<Vec<Box<dyn CommsModule>>>,
    senders: Vec<Sender<Event>>,
    receivers: Vec<Option<Receiver<Event>>>,
    clients: Vec<Vec<Sender<Message>>>,
    faults: Option<FaultPlan>,
}

impl TcpSession {
    /// Starts building a session of `size` brokers with tree `arity`;
    /// `factory` produces each rank's modules.
    pub fn builder<F>(size: u32, arity: u32, factory: F) -> TcpSessionBuilder
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut b = TcpSessionBuilder {
            config: TcpConfig::default(),
            configs: Vec::new(),
            modules: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            clients: Vec::new(),
            faults: None,
        };
        for r in 0..size {
            let rank = Rank(r);
            let (tx, rx) = channel();
            b.configs.push(BrokerConfig::new(rank, size).with_arity(arity));
            b.modules.push(factory(rank));
            b.senders.push(tx);
            b.receivers.push(Some(rx));
            b.clients.push(Vec::new());
        }
        b
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The loopback address each rank's broker listens on.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Stops broker threads, drains links, and joins every thread the
    /// session spawned.
    pub fn shutdown(self) {
        // 1. Brokers exit, dropping their outbound links; peers' reader
        //    threads see EOF and drain.
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.broker_handles {
            // flux-lint: allow(block) — ordered teardown: shutdown()
            // consumes the session off the hot path and each joined
            // thread has already been told to exit.
            let _ = h.join();
        }
        // 2. Wake each acceptor with a throwaway local connect.
        self.stopping.store(true, Ordering::SeqCst);
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
        }
        for h in self.acceptor_handles {
            // flux-lint: allow(block) — ordered teardown, as above; the
            // wake-up connect just before guarantees the acceptor exits.
            let _ = h.join();
        }
        // 3. Reader threads: already at EOF from step 1.
        let readers = std::mem::take(&mut *self.readers.lock());
        for h in readers {
            // flux-lint: allow(block) — ordered teardown, as above;
            // readers saw EOF when the brokers dropped their links.
            let _ = h.join();
        }
    }
}

impl TcpSessionBuilder {
    /// Overrides the link tuning (timeouts, retry, backoff, frame cap).
    pub fn with_config(mut self, config: TcpConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides one rank's broker config (e.g. a faster heartbeat).
    pub fn set_config(&mut self, rank: Rank, config: BrokerConfig) -> &mut Self {
        self.configs[rank.index()] = config;
        self
    }

    /// Applies a fault-injection plan to every broker's links.
    pub fn set_faults(&mut self, plan: &FaultPlan) -> &mut Self {
        self.faults = Some(plan.clone()).filter(|p| !p.is_empty());
        self
    }

    /// Attaches a client to `rank`'s broker, returning its handle.
    pub fn attach_client(&mut self, rank: Rank) -> TcpClient {
        let (tx, rx) = channel();
        let client_id = self.clients[rank.index()].len() as ClientId;
        self.clients[rank.index()].push(tx);
        LiveClient { rank, client_id, tx: self.senders[rank.index()].clone(), rx }
    }

    /// Binds every rank's listener, then launches acceptor and broker
    /// threads. The session epoch (t = 0) is shared.
    ///
    /// # Panics
    /// Panics if a loopback listener cannot be bound or a thread cannot
    /// be spawned.
    pub fn start(mut self) -> TcpSession {
        let size = self.configs.len() as u32;
        // Bind all listeners before any broker runs, so every rank's
        // first outbound connect finds a live (if not yet accepting)
        // socket: the kernel backlog absorbs early connects.
        // flux-lint: allow(panic) — session construction: without a bound
        // loopback listener per rank there is no session to run, and the
        // documented `# Panics` contract covers it.
        let listeners: Vec<TcpListener> = (0..size)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback listener"))
            .collect();
        // flux-lint: allow(panic) — same setup-time contract as above.
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(|l| l.local_addr().expect("listener addr")).collect();

        let stopping = Arc::new(AtomicBool::new(false));
        // Level 100: the only lock in the transport layer today; the
        // next subsystem lock should take 200 (see flux_core::ordered_lock).
        let readers = Arc::new(OrderedMutex::new("tcp.readers", 100, Vec::new()));
        let acceptor_handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(idx, listener)| {
                let tx = self.senders[idx].clone();
                let config = self.config.clone();
                let stopping = Arc::clone(&stopping);
                let readers = Arc::clone(&readers);
                std::thread::Builder::new()
                    .name(format!("flux-tcp-accept-{idx}"))
                    .spawn(move || accept_loop(listener, size, tx, config, stopping, readers))
                    // flux-lint: allow(panic) — setup-time thread spawn,
                    // covered by the documented `# Panics` contract.
                    .expect("spawn acceptor thread")
            })
            .collect();

        let epoch = Instant::now();
        let mut broker_handles = Vec::new();
        for (idx, rx) in self.receivers.iter_mut().enumerate() {
            let host = BrokerHost {
                broker: Broker::new(
                    self.configs[idx].clone(),
                    std::mem::take(&mut self.modules[idx]),
                ),
                // flux-lint: allow(panic) — each receiver is taken exactly
                // once here; a second take is a builder bug.
                rx: rx.take().expect("receiver present"),
                peers: TcpPeers {
                    rank: Rank::from(idx),
                    addrs: addrs.clone(),
                    links: (0..size).map(|_| None).collect(),
                    config: self.config.clone(),
                    scratch: Vec::with_capacity(256),
                },
                clients: std::mem::take(&mut self.clients[idx]),
                epoch,
                timers: BinaryHeap::new(),
                faults: self.faults.as_ref().map(|p| p.for_sender(Rank::from(idx))),
                delayed: BinaryHeap::new(),
                delay_seq: 0,
            };
            broker_handles.push(
                std::thread::Builder::new()
                    .name(format!("flux-broker-{idx}"))
                    .spawn(move || host.run())
                    // flux-lint: allow(panic) — setup-time thread spawn,
                    // covered by the documented `# Panics` contract.
                    .expect("spawn broker thread"),
            );
        }
        TcpSession {
            size,
            addrs,
            senders: self.senders,
            broker_handles,
            acceptor_handles,
            readers,
            stopping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            max_connect_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            ..TcpConfig::default()
        }
    }

    #[test]
    fn connect_with_retry_succeeds_on_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_with_retry(addr, &quick_config()).unwrap();
        drop(stream);
    }

    #[test]
    fn connect_with_retry_gives_up_after_attempts() {
        // Bind-then-drop to obtain a loopback port that refuses connects.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = Instant::now();
        let err = connect_with_retry(addr, &quick_config()).unwrap_err();
        // 3 attempts with jittered backoffs between them: at least
        // 10/2 + 20/2 = 15ms of sleeping.
        assert!(t0.elapsed() >= Duration::from_millis(14), "backoff was applied");
        assert!(err.kind() == io::ErrorKind::ConnectionRefused || err.kind() == io::ErrorKind::TimedOut);
    }

    #[test]
    fn connect_with_retry_respects_total_deadline() {
        // With an effectively unbounded attempt count, the total retry
        // budget must still stop a connect to a peer that never comes up.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut config = quick_config();
        config.max_connect_attempts = u32::MAX;
        config.retry_deadline = Duration::from_millis(120);
        let t0 = Instant::now();
        let err = connect_with_retry(addr, &config).unwrap_err();
        let elapsed = t0.elapsed();
        assert!(elapsed < Duration::from_secs(5), "gave up near the budget, took {elapsed:?}");
        assert!(err.to_string().contains("attempt"), "error names the attempts: {err}");
    }

    #[test]
    fn connect_with_retry_rides_out_a_late_listener() {
        // Reserve a port, free it, then re-bind it shortly after the
        // first connect attempt has already failed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            let listener = TcpListener::bind(addr).expect("re-bind reserved port");
            // Hold the listener long enough for the retry to land.
            std::thread::sleep(Duration::from_millis(500));
            drop(listener);
        });
        let mut config = quick_config();
        config.max_connect_attempts = 8;
        config.max_backoff = Duration::from_millis(100);
        let result = connect_with_retry(addr, &config);
        binder.join().unwrap();
        assert!(result.is_ok(), "retry found the late listener: {result:?}");
    }

    #[test]
    fn handshake_timeout_drops_silent_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let silent = TcpStream::connect(addr).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        let err = read_handshake(&mut accepted, Duration::from_millis(50)).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut,
            "timed out: {err:?}"
        );
        drop(silent);
    }
}
