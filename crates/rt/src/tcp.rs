//! Comms sessions over real loopback TCP sockets, driven by the
//! poll-based reactor ([`crate::reactor`], ROADMAP item 3).
//!
//! The closest live analogue of the prototype's ØMQ TCP overlay: one
//! *reactor thread* per rank hosting the sans-io [`flux_broker::Broker`]
//! and every socket that rank owns. All sockets are nonblocking; the
//! reactor discovers readiness by level-triggered scanning and parks in
//! the broker's command channel when idle. There are no acceptor or
//! reader threads — a 1024-broker session costs 1024 threads, not
//! `O(links)`.
//!
//! Wire-up: every rank binds a listener on `127.0.0.1:0` *before* any
//! broker starts, so the full address map is known up front — the moral
//! equivalent of the paper's PMI exchange of broker endpoints. Outbound
//! broker→broker traffic rides a small per-destination pool of
//! connections ([`TcpConfig::pool_size`]) established lazily on first
//! send; connects never block the reactor — a refused connect is
//! rescheduled by [`RetrySchedule`] with jittered exponential backoff.
//! Each direction of a broker pair is its own connection; a link opens
//! with a 4-byte little-endian rank handshake so the accepting side can
//! attribute inbound frames.
//!
//! Clients come in two flavors: in-process channel attachments
//! ([`TcpSessionBuilder::attach_client`], the prototype's local IPC
//! sockets), and *socket clients* — any process that connects to a
//! broker's listener, sends the [`CLIENT_HELLO`] sentinel, reads back
//! its assigned client id, and then speaks length-prefixed
//! [`flux_wire::frame`]s. Socket clients may pipeline arbitrarily many
//! requests on one stream; replies are matched by `MsgId` (see
//! [`flux_broker::client::ClientCore`]).
//!
//! Shutdown is ordered: each broker drains its channel, gets `Shutdown`,
//! flushes what it can without blocking, closes every socket, and its
//! reactor thread is joined before `shutdown()` returns.

use crate::faults::FaultPlan;
use crate::live::{BrokerHost, Event, LiveClient};
use crate::reactor::{run_reactor, ReactorPeers};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule};
use flux_core::rng::Rng;
use flux_wire::{frame, Message, Rank};
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

/// Handshake sentinel a socket client sends instead of a broker rank
/// (4 bytes, little-endian). The broker replies with the client's
/// assigned broker-local id — also 4 raw little-endian bytes — before
/// any frames. Real ranks are always below the session size, so the
/// sentinel cannot collide.
pub const CLIENT_HELLO: u32 = u32::MAX;

/// Tuning for TCP links.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Connect attempts per link burst before giving up (≥ 1).
    pub max_connect_attempts: u32,
    /// Backoff before the second connect attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Ceiling on the per-attempt backoff (also the cool-down after a
    /// burst's budget is spent).
    pub max_backoff: Duration,
    /// Total time budget across one burst of connect attempts: once
    /// exceeded the link gives up, drops its queue, and cools down.
    pub retry_deadline: Duration,
    /// Deadline for an accepted connection to complete its 4-byte
    /// handshake (guards against a connector that never identifies
    /// itself).
    pub handshake_timeout: Duration,
    /// Size cap on a single frame, bytes (see [`frame::MAX_FRAME`]).
    pub max_frame: usize,
    /// Outbound connections per peer broker. The event plane is pinned
    /// to slot 0 (it needs per-link FIFO); tree/ring traffic
    /// round-robins the remaining slots.
    pub pool_size: usize,
    /// Floor on the reactor's idle park duration (the poll tick when
    /// sockets were recently active).
    pub poll_interval: Duration,
    /// Ceiling the idle park duration backs off to when nothing is
    /// happening.
    pub max_poll_interval: Duration,
    /// Per-connection outbound buffer cap, bytes. A peer this far
    /// behind gets new frames dropped (frame-aligned) rather than
    /// buffering without bound.
    pub max_outbuf: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(5),
            max_connect_attempts: 6,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            retry_deadline: Duration::from_secs(15),
            handshake_timeout: Duration::from_secs(5),
            max_frame: frame::MAX_FRAME,
            pool_size: 2,
            poll_interval: Duration::from_micros(500),
            max_poll_interval: Duration::from_millis(10),
            max_outbuf: 64 * 1024 * 1024,
        }
    }
}

/// Nonblocking connect-retry state for one outbound link: when the next
/// attempt is allowed, how the backoff grows, and when a burst's budget
/// (attempt count or wall-clock deadline) is spent. Pure state machine —
/// it never sleeps; the reactor simply skips links whose next attempt
/// isn't [`due`](RetrySchedule::due) yet. Backoff sleeps are jittered
/// uniform in `[backoff/2, backoff]` so a session's worth of brokers
/// retrying the same slow peer don't synchronize into connect storms.
#[derive(Clone, Debug, Default)]
pub struct RetrySchedule {
    attempts: u32,
    backoff: Duration,
    window_start: Option<Instant>,
    next_at: Option<Instant>,
}

impl RetrySchedule {
    /// A fresh schedule: the first attempt is due immediately.
    pub fn new() -> RetrySchedule {
        RetrySchedule::default()
    }

    /// Whether an attempt is allowed at `now`.
    pub fn due(&self, now: Instant) -> bool {
        self.next_at.is_none_or(|at| now >= at)
    }

    /// Records a successful connect: the schedule resets fully.
    pub fn succeeded(&mut self) {
        *self = RetrySchedule::new();
    }

    /// Records a failed attempt at `now`. Returns `true` if the burst
    /// may continue (a later attempt is scheduled), `false` when the
    /// budget — `max_connect_attempts` or `retry_deadline`, whichever
    /// trips first — is spent: the caller should drop queued traffic and
    /// the schedule enters a `max_backoff` cool-down before the next
    /// burst.
    pub fn failed(&mut self, now: Instant, config: &TcpConfig, jitter: &mut Rng) -> bool {
        self.attempts += 1;
        let window = *self.window_start.get_or_insert(now);
        let spent = self.attempts >= config.max_connect_attempts.max(1)
            || now.duration_since(window) >= config.retry_deadline;
        if spent {
            self.attempts = 0;
            self.backoff = Duration::ZERO;
            self.window_start = None;
            self.next_at = Some(now + config.max_backoff);
            return false;
        }
        if self.backoff.is_zero() {
            self.backoff = config.initial_backoff;
        }
        let base = self.backoff.as_nanos() as u64;
        let wait = Duration::from_nanos(base / 2 + jitter.gen_range(0..=base.div_ceil(2)));
        self.next_at = Some(now + wait);
        self.backoff = (self.backoff * 2).min(config.max_backoff);
        true
    }
}

/// Connects a *socket client* to a broker listening at `addr`: performs
/// the [`CLIENT_HELLO`] handshake and returns the stream plus the
/// broker-assigned client id (feed it to
/// [`flux_broker::client::ClientCore::new`] so request ids are
/// collision-free). The stream is left in blocking mode with `timeout`
/// as its read timeout; callers pipelining nonblocking I/O can flip it
/// with `set_nonblocking`.
///
/// # Errors
/// Propagates connect, write, and read failures; times out if the broker
/// does not answer the hello within `timeout`.
pub fn connect_socket_client(
    addr: SocketAddr,
    timeout: Duration,
) -> io::Result<(TcpStream, ClientId)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.write_all(&CLIENT_HELLO.to_le_bytes())?;
    let mut raw = [0u8; 4];
    stream.read_exact(&mut raw)?;
    Ok((stream, ClientId::from_le_bytes(raw)))
}

/// A client connection to a broker in a [`TcpSession`].
pub type TcpClient = LiveClient;

/// A comms session whose brokers are wired over loopback TCP: call
/// [`TcpSession::builder`], attach clients, then
/// [`TcpSessionBuilder::start`]. One reactor thread per broker drives
/// all of that broker's sockets (see [`crate::reactor`]).
pub struct TcpSession {
    size: u32,
    addrs: Vec<SocketAddr>,
    senders: Vec<Sender<Event>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Builder collecting brokers and client attachments before the session
/// goes live.
pub struct TcpSessionBuilder {
    config: TcpConfig,
    configs: Vec<BrokerConfig>,
    modules: Vec<Vec<Box<dyn CommsModule>>>,
    senders: Vec<Sender<Event>>,
    receivers: Vec<Option<Receiver<Event>>>,
    clients: Vec<Vec<Sender<Message>>>,
    faults: Option<FaultPlan>,
}

impl TcpSession {
    /// Starts building a session of `size` brokers with tree `arity`;
    /// `factory` produces each rank's modules.
    pub fn builder<F>(size: u32, arity: u32, factory: F) -> TcpSessionBuilder
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut b = TcpSessionBuilder {
            config: TcpConfig::default(),
            configs: Vec::new(),
            modules: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            clients: Vec::new(),
            faults: None,
        };
        for r in 0..size {
            let rank = Rank(r);
            let (tx, rx) = channel();
            b.configs.push(BrokerConfig::new(rank, size).with_arity(arity));
            b.modules.push(factory(rank));
            b.senders.push(tx);
            b.receivers.push(Some(rx));
            b.clients.push(Vec::new());
        }
        b
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The loopback address each rank's broker listens on. Socket
    /// clients connect here (see [`connect_socket_client`]).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Stops every reactor thread and joins it. Each reactor flushes
    /// what it can without blocking and closes its sockets on the way
    /// out; socket clients observe EOF.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles {
            // flux-lint: allow(block) — ordered teardown: shutdown()
            // consumes the session off the hot path and each joined
            // reactor has already been told to exit.
            let _ = h.join();
        }
    }
}

impl TcpSessionBuilder {
    /// Overrides the link tuning (timeouts, retry, pooling, frame cap).
    pub fn with_config(mut self, config: TcpConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides one rank's broker config (e.g. a faster heartbeat).
    pub fn set_config(&mut self, rank: Rank, config: BrokerConfig) -> &mut Self {
        self.configs[rank.index()] = config;
        self
    }

    /// Applies a fault-injection plan to every broker's links.
    pub fn set_faults(&mut self, plan: &FaultPlan) -> &mut Self {
        self.faults = Some(plan.clone()).filter(|p| !p.is_empty());
        self
    }

    /// Attaches an in-process channel client to `rank`'s broker,
    /// returning its handle. Socket clients instead connect to the
    /// session's [`addrs`](TcpSession::addrs) after start and are
    /// assigned ids above the channel-attached range.
    pub fn attach_client(&mut self, rank: Rank) -> TcpClient {
        let (tx, rx) = channel();
        let client_id = self.clients[rank.index()].len() as ClientId;
        self.clients[rank.index()].push(tx);
        LiveClient { rank, client_id, tx: self.senders[rank.index()].clone(), rx }
    }

    /// Binds every rank's listener, then launches one reactor thread per
    /// broker. The session epoch (t = 0) is shared.
    ///
    /// # Panics
    /// Panics if a loopback listener cannot be bound or a thread cannot
    /// be spawned.
    pub fn start(mut self) -> TcpSession {
        let size = self.configs.len() as u32;
        // Bind all listeners before any broker runs, so every rank's
        // first outbound connect finds a live (if not yet accepting)
        // socket: the kernel backlog absorbs early connects.
        // flux-lint: allow(panic) — session construction: without a bound
        // loopback listener per rank there is no session to run, and the
        // documented `# Panics` contract covers it.
        let listeners: Vec<TcpListener> = (0..size)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback listener"))
            .collect();
        // flux-lint: allow(panic) — same setup-time contract as above.
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(|l| l.local_addr().expect("listener addr")).collect();

        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (idx, listener) in listeners.into_iter().enumerate() {
            let rank = Rank::from(idx);
            let first_socket_client = self.clients[idx].len() as ClientId;
            let peers = ReactorPeers::new(
                rank,
                addrs.clone(),
                listener,
                self.config.clone(),
                first_socket_client,
            )
            // flux-lint: allow(panic) — setup-time socket configuration,
            // covered by the documented `# Panics` contract.
            .expect("nonblocking listener");
            let host = BrokerHost {
                broker: Broker::new(
                    self.configs[idx].clone(),
                    std::mem::take(&mut self.modules[idx]),
                ),
                // flux-lint: allow(panic) — each receiver is taken exactly
                // once here; a second take is a builder bug.
                rx: self.receivers[idx].take().expect("receiver present"),
                peers,
                clients: std::mem::take(&mut self.clients[idx]),
                epoch,
                timers: BinaryHeap::new(),
                faults: self.faults.as_ref().map(|p| p.for_sender(rank)),
                delayed: BinaryHeap::new(),
                delay_seq: 0,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("flux-reactor-{idx}"))
                    .spawn(move || run_reactor(host))
                    // flux-lint: allow(panic) — setup-time thread spawn,
                    // covered by the documented `# Panics` contract.
                    .expect("spawn reactor thread"),
            );
        }
        TcpSession { size, addrs, senders: self.senders, handles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            max_connect_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            retry_deadline: Duration::from_millis(400),
            ..TcpConfig::default()
        }
    }

    // RetrySchedule is a pure state machine, so every timing property is
    // tested with synthetic instants — no sleeps, no flakes (the old
    // connect_with_retry tests raced the wall clock).

    #[test]
    fn fresh_schedule_is_due_immediately() {
        let s = RetrySchedule::new();
        assert!(s.due(Instant::now()));
    }

    #[test]
    fn failure_schedules_a_jittered_backoff() {
        let config = quick_config();
        let mut jitter = Rng::seeded(7);
        let mut s = RetrySchedule::new();
        let now = Instant::now();
        assert!(s.failed(now, &config, &mut jitter), "burst continues");
        // The wait is uniform in [backoff/2, backoff].
        assert!(!s.due(now), "not due at the instant of failure");
        assert!(!s.due(now + config.initial_backoff / 2 - Duration::from_nanos(1)));
        assert!(s.due(now + config.initial_backoff), "due once the full backoff has passed");
    }

    #[test]
    fn backoff_doubles_up_to_the_ceiling() {
        let config = quick_config();
        let mut jitter = Rng::seeded(7);
        let mut s = RetrySchedule::new();
        let mut now = Instant::now();
        let mut waits = Vec::new();
        // Wide budget so we observe growth, not give-up.
        let mut wide = config.clone();
        wide.max_connect_attempts = 100;
        wide.retry_deadline = Duration::from_secs(3600);
        for _ in 0..5 {
            assert!(s.failed(now, &wide, &mut jitter));
            let next = s.next_at.unwrap();
            waits.push(next.duration_since(now));
            now = next;
        }
        // Ceiling: never above max_backoff.
        for w in &waits {
            assert!(*w <= wide.max_backoff, "wait {w:?} under ceiling");
        }
        // Growth: the last waits sit at the ceiling's jitter band.
        assert!(waits[4] >= wide.max_backoff / 2, "backoff reached the ceiling band");
    }

    #[test]
    fn attempt_budget_spends_the_burst_and_cools_down() {
        let config = quick_config(); // 3 attempts
        let mut jitter = Rng::seeded(7);
        let mut s = RetrySchedule::new();
        let now = Instant::now();
        assert!(s.failed(now, &config, &mut jitter));
        assert!(s.failed(now, &config, &mut jitter));
        assert!(!s.failed(now, &config, &mut jitter), "third failure spends the budget");
        // Cool-down: not due until max_backoff has passed.
        assert!(!s.due(now + config.max_backoff - Duration::from_nanos(1)));
        assert!(s.due(now + config.max_backoff));
    }

    #[test]
    fn deadline_budget_spends_the_burst_even_with_attempts_left() {
        let mut config = quick_config();
        config.max_connect_attempts = u32::MAX;
        let mut jitter = Rng::seeded(7);
        let mut s = RetrySchedule::new();
        let t0 = Instant::now();
        assert!(s.failed(t0, &config, &mut jitter));
        // Next failure lands after the retry deadline: burst over.
        assert!(!s.failed(t0 + config.retry_deadline, &config, &mut jitter));
    }

    #[test]
    fn success_resets_the_schedule() {
        let config = quick_config();
        let mut jitter = Rng::seeded(7);
        let mut s = RetrySchedule::new();
        let now = Instant::now();
        assert!(s.failed(now, &config, &mut jitter));
        s.succeeded();
        assert!(s.due(now), "fresh after success");
        assert_eq!(s.attempts, 0);
    }

    #[test]
    fn client_hello_cannot_collide_with_a_rank() {
        // Ranks are u32 indices below the session size; a session of
        // u32::MAX brokers is unrepresentable (the tree parent math
        // alone overflows), so the sentinel is safe.
        assert_eq!(CLIENT_HELLO, u32::MAX);
    }
}
