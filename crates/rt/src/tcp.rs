//! Comms sessions over real loopback TCP sockets.
//!
//! The closest live analogue of the prototype's ØMQ TCP overlay: one
//! broker thread per rank as in [`crate::threads`], but broker↔broker
//! traffic rides genuine `TcpStream`s carrying length-prefixed
//! [`flux_wire`] frames ([`flux_wire::frame`]). Clients remain
//! in-process channel attachments (the prototype's local IPC sockets).
//!
//! Wire-up: every rank binds a listener on `127.0.0.1:0` *before* any
//! broker starts, so the full address map is known up front — the moral
//! equivalent of the paper's PMI exchange of broker endpoints. Outbound
//! links are established lazily on first send, with bounded
//! connect-retry and exponential backoff to ride out peers that are
//! still starting. Each direction of a broker pair is its own
//! connection; a link opens with a 4-byte little-endian rank handshake
//! so the accepting side can attribute inbound frames.
//!
//! Shutdown is ordered: brokers stop (dropping outbound links), peers'
//! reader threads drain to EOF, acceptors are woken by a local connect
//! and exit, and every thread is joined before `shutdown()` returns.

use crate::live::{BrokerHost, Event, LiveClient, PeerSender};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule};
use flux_wire::{frame, Message, Rank};
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for TCP links.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Connect attempts per link before giving up (≥ 1).
    pub max_connect_attempts: u32,
    /// Backoff before the second connect attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Read timeout for the rank handshake on accepted connections
    /// (guards against a connector that never identifies itself).
    pub handshake_timeout: Duration,
    /// Size cap on a single frame, bytes (see [`frame::MAX_FRAME`]).
    pub max_frame: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(5),
            max_connect_attempts: 6,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(5),
            max_frame: frame::MAX_FRAME,
        }
    }
}

/// Connects to `addr`, retrying with exponential backoff per the config.
///
/// # Errors
/// Returns the last connect error once `max_connect_attempts` attempts
/// have failed.
pub fn connect_with_retry(addr: SocketAddr, config: &TcpConfig) -> io::Result<TcpStream> {
    let attempts = config.max_connect_attempts.max(1);
    let mut backoff = config.initial_backoff;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(config.max_backoff);
        }
        match TcpStream::connect_timeout(&addr, config.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts made")))
}

/// Outbound TCP links of one broker: lazily connected, retried once
/// (with the full backoff schedule) on a mid-session write failure.
struct TcpPeers {
    rank: Rank,
    addrs: Vec<SocketAddr>,
    links: Vec<Option<TcpStream>>,
    config: TcpConfig,
}

impl TcpPeers {
    fn open_link(&self, to: Rank) -> io::Result<TcpStream> {
        let mut stream = connect_with_retry(self.addrs[to.index()], &self.config)?;
        stream.set_nodelay(true)?;
        // Identify ourselves so the acceptor can attribute our frames.
        stream.write_all(&self.rank.0.to_le_bytes())?;
        Ok(stream)
    }

    fn try_send(&mut self, to: Rank, msg: &Message) -> io::Result<()> {
        if self.links[to.index()].is_none() {
            self.links[to.index()] = Some(self.open_link(to)?);
        }
        let stream = self.links[to.index()].as_mut().expect("link just ensured");
        frame::write_frame(stream, msg, self.config.max_frame)
    }
}

impl PeerSender for TcpPeers {
    fn send_to(&mut self, to: Rank, msg: Message) {
        if self.try_send(to, &msg).is_err() {
            // The link may have died mid-session; rebuild it once and
            // retry. A second failure drops the message — overlay peers
            // are expected to be repaired by the liveness layer, not the
            // transport.
            self.links[to.index()] = None;
            let _ = self.try_send(to, &msg);
        }
    }

    fn close(&mut self) {
        for link in self.links.iter_mut().filter_map(Option::take) {
            let _ = link.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Reads the 4-byte little-endian rank handshake.
fn read_handshake(stream: &mut TcpStream, timeout: Duration) -> io::Result<Rank> {
    stream.set_read_timeout(Some(timeout))?;
    let mut raw = [0u8; 4];
    stream.read_exact(&mut raw)?;
    stream.set_read_timeout(None)?;
    Ok(Rank(u32::from_le_bytes(raw)))
}

/// Accept loop for one rank's listener: handshakes each inbound link and
/// spawns a reader thread that feeds decoded frames into the broker.
fn accept_loop(
    listener: TcpListener,
    tx: Sender<Event>,
    config: TcpConfig,
    stopping: Arc<AtomicBool>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let Ok((mut stream, _)) = listener.accept() else { break };
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(from) = read_handshake(&mut stream, config.handshake_timeout) else {
            continue; // never identified itself; drop the connection
        };
        let tx = tx.clone();
        let max_frame = config.max_frame;
        let handle = std::thread::Builder::new()
            .name(format!("flux-tcp-read-{}", from.0))
            .spawn(move || {
                let mut stream = stream;
                // Clean EOF, a malformed frame, or a dead socket all end
                // this link; the peer reconnects if it has more to say.
                while let Ok(Some(msg)) = frame::read_frame(&mut stream, max_frame) {
                    if tx.send(Event::FromBroker { from, msg }).is_err() {
                        break; // broker gone
                    }
                }
            })
            .expect("spawn reader thread");
        readers.lock().expect("reader registry").push(handle);
    }
}

/// A client connection to a broker in a [`TcpSession`].
pub type TcpClient = LiveClient;

/// A comms session whose brokers are wired over loopback TCP: call
/// [`TcpSession::builder`], attach clients, then
/// [`TcpSessionBuilder::start`].
pub struct TcpSession {
    size: u32,
    addrs: Vec<SocketAddr>,
    senders: Vec<Sender<Event>>,
    broker_handles: Vec<std::thread::JoinHandle<()>>,
    acceptor_handles: Vec<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stopping: Arc<AtomicBool>,
}

/// Builder collecting brokers and client attachments before the session
/// goes live.
pub struct TcpSessionBuilder {
    config: TcpConfig,
    configs: Vec<BrokerConfig>,
    modules: Vec<Vec<Box<dyn CommsModule>>>,
    senders: Vec<Sender<Event>>,
    receivers: Vec<Option<Receiver<Event>>>,
    clients: Vec<Vec<Sender<Message>>>,
}

impl TcpSession {
    /// Starts building a session of `size` brokers with tree `arity`;
    /// `factory` produces each rank's modules.
    pub fn builder<F>(size: u32, arity: u32, factory: F) -> TcpSessionBuilder
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut b = TcpSessionBuilder {
            config: TcpConfig::default(),
            configs: Vec::new(),
            modules: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            clients: Vec::new(),
        };
        for r in 0..size {
            let rank = Rank(r);
            let (tx, rx) = channel();
            b.configs.push(BrokerConfig::new(rank, size).with_arity(arity));
            b.modules.push(factory(rank));
            b.senders.push(tx);
            b.receivers.push(Some(rx));
            b.clients.push(Vec::new());
        }
        b
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The loopback address each rank's broker listens on.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Stops broker threads, drains links, and joins every thread the
    /// session spawned.
    pub fn shutdown(self) {
        // 1. Brokers exit, dropping their outbound links; peers' reader
        //    threads see EOF and drain.
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.broker_handles {
            let _ = h.join();
        }
        // 2. Wake each acceptor with a throwaway local connect.
        self.stopping.store(true, Ordering::SeqCst);
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
        }
        for h in self.acceptor_handles {
            let _ = h.join();
        }
        // 3. Reader threads: already at EOF from step 1.
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader registry"));
        for h in readers {
            let _ = h.join();
        }
    }
}

impl TcpSessionBuilder {
    /// Overrides the link tuning (timeouts, retry, backoff, frame cap).
    pub fn with_config(mut self, config: TcpConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides one rank's broker config (e.g. a faster heartbeat).
    pub fn set_config(&mut self, rank: Rank, config: BrokerConfig) -> &mut Self {
        self.configs[rank.index()] = config;
        self
    }

    /// Attaches a client to `rank`'s broker, returning its handle.
    pub fn attach_client(&mut self, rank: Rank) -> TcpClient {
        let (tx, rx) = channel();
        let client_id = self.clients[rank.index()].len() as ClientId;
        self.clients[rank.index()].push(tx);
        LiveClient { rank, client_id, tx: self.senders[rank.index()].clone(), rx }
    }

    /// Binds every rank's listener, then launches acceptor and broker
    /// threads. The session epoch (t = 0) is shared.
    ///
    /// # Panics
    /// Panics if a loopback listener cannot be bound or a thread cannot
    /// be spawned.
    pub fn start(mut self) -> TcpSession {
        let size = self.configs.len() as u32;
        // Bind all listeners before any broker runs, so every rank's
        // first outbound connect finds a live (if not yet accepting)
        // socket: the kernel backlog absorbs early connects.
        let listeners: Vec<TcpListener> = (0..size)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback listener"))
            .collect();
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(|l| l.local_addr().expect("listener addr")).collect();

        let stopping = Arc::new(AtomicBool::new(false));
        let readers = Arc::new(Mutex::new(Vec::new()));
        let acceptor_handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(idx, listener)| {
                let tx = self.senders[idx].clone();
                let config = self.config.clone();
                let stopping = Arc::clone(&stopping);
                let readers = Arc::clone(&readers);
                std::thread::Builder::new()
                    .name(format!("flux-tcp-accept-{idx}"))
                    .spawn(move || accept_loop(listener, tx, config, stopping, readers))
                    .expect("spawn acceptor thread")
            })
            .collect();

        let epoch = Instant::now();
        let mut broker_handles = Vec::new();
        for (idx, rx) in self.receivers.iter_mut().enumerate() {
            let host = BrokerHost {
                broker: Broker::new(
                    self.configs[idx].clone(),
                    std::mem::take(&mut self.modules[idx]),
                ),
                rx: rx.take().expect("receiver present"),
                peers: TcpPeers {
                    rank: Rank::from(idx),
                    addrs: addrs.clone(),
                    links: (0..size).map(|_| None).collect(),
                    config: self.config.clone(),
                },
                clients: std::mem::take(&mut self.clients[idx]),
                epoch,
                timers: BinaryHeap::new(),
            };
            broker_handles.push(
                std::thread::Builder::new()
                    .name(format!("flux-broker-{idx}"))
                    .spawn(move || host.run())
                    .expect("spawn broker thread"),
            );
        }
        TcpSession {
            size,
            addrs,
            senders: self.senders,
            broker_handles,
            acceptor_handles,
            readers,
            stopping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            max_connect_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            ..TcpConfig::default()
        }
    }

    #[test]
    fn connect_with_retry_succeeds_on_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_with_retry(addr, &quick_config()).unwrap();
        drop(stream);
    }

    #[test]
    fn connect_with_retry_gives_up_after_attempts() {
        // Bind-then-drop to obtain a loopback port that refuses connects.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = Instant::now();
        let err = connect_with_retry(addr, &quick_config()).unwrap_err();
        // 3 attempts with 10ms + 20ms backoff between them.
        assert!(t0.elapsed() >= Duration::from_millis(30), "backoff was applied");
        assert!(err.kind() == io::ErrorKind::ConnectionRefused || err.kind() == io::ErrorKind::TimedOut);
    }

    #[test]
    fn connect_with_retry_rides_out_a_late_listener() {
        // Reserve a port, free it, then re-bind it shortly after the
        // first connect attempt has already failed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            let listener = TcpListener::bind(addr).expect("re-bind reserved port");
            // Hold the listener long enough for the retry to land.
            std::thread::sleep(Duration::from_millis(500));
            drop(listener);
        });
        let mut config = quick_config();
        config.max_connect_attempts = 8;
        config.max_backoff = Duration::from_millis(100);
        let result = connect_with_retry(addr, &config);
        binder.join().unwrap();
        assert!(result.is_ok(), "retry found the late listener: {result:?}");
    }

    #[test]
    fn handshake_timeout_drops_silent_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let silent = TcpStream::connect(addr).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        let err = read_handshake(&mut accepted, Duration::from_millis(50)).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut,
            "timed out: {err:?}"
        );
        drop(silent);
    }
}
