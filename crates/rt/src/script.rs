//! Scripted client processes for simulator sessions.
//!
//! A [`ScriptClient`] is an actor that executes a fixed sequence of
//! [`Op`]s against its local broker, one outstanding request at a time,
//! recording the virtual completion time of every op. The KAP benchmark
//! (flux-kap) and the examples are built from these: a KAP producer is
//! `[Barrier, Put × n, Fence]`, a consumer `[Barrier, Fence, Get × m]`.

use crate::sim::SimSession;
use flux_broker::client::{ClientCore, Delivery};
use flux_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use flux_value::Value;
use flux_proto::{BarrierMethod, KvsMethod};
use flux_wire::{Message, Rank, Topic};
use std::cell::RefCell;
use std::rc::Rc;

/// One scripted operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// `kvs.put key = val`.
    Put {
        /// Key.
        key: String,
        /// Value.
        val: Value,
    },
    /// `kvs.commit`.
    Commit,
    /// `kvs.fence name nprocs`.
    Fence {
        /// Fence name.
        name: String,
        /// Participant count.
        nprocs: u64,
    },
    /// `kvs.get key`.
    Get {
        /// Key.
        key: String,
    },
    /// `kvs.get_version`.
    GetVersion,
    /// `kvs.wait_version v`.
    WaitVersion(u64),
    /// `barrier.enter name nprocs`.
    Barrier {
        /// Barrier name.
        name: String,
        /// Participant count.
        nprocs: u64,
    },
    /// An arbitrary request.
    Request {
        /// Topic.
        topic: Topic,
        /// Payload.
        payload: Value,
    },
    /// Wait this many nanoseconds before the next op (virtual time on
    /// the simulator, wall time on live transports). Lets a workload
    /// span heartbeat epochs, so scheduled faults (blackouts,
    /// partitions) genuinely interleave with its traffic.
    Pause(u64),
}

impl Op {
    /// Builds the request message for this op (tagged `tag`), using
    /// `core` for id allocation. Shared by the simulator's
    /// [`ScriptClient`] and the live-transport script driver.
    pub fn to_request(&self, core: &mut ClientCore, tag: u64) -> Message {
        match self {
            Op::Put { key, val } => core.request(
                KvsMethod::Put.topic(),
                Value::from_pairs([("k", Value::from(key.as_str())), ("v", val.clone())]),
                tag,
            ),
            Op::Commit => core.request(KvsMethod::Commit.topic(), Value::object(), tag),
            Op::Fence { name, nprocs } => core.request(
                KvsMethod::Fence.topic(),
                Value::from_pairs([
                    ("name", Value::from(name.as_str())),
                    ("nprocs", Value::from(*nprocs as i64)),
                ]),
                tag,
            ),
            Op::Get { key } => core.request(
                KvsMethod::Get.topic(),
                Value::from_pairs([("k", Value::from(key.as_str()))]),
                tag,
            ),
            Op::GetVersion => {
                core.request(KvsMethod::GetVersion.topic(), Value::object(), tag)
            }
            Op::WaitVersion(v) => core.request(
                KvsMethod::WaitVersion.topic(),
                Value::from_pairs([("version", Value::from(*v as i64))]),
                tag,
            ),
            Op::Barrier { name, nprocs } => core.request(
                BarrierMethod::Enter.topic(),
                Value::from_pairs([
                    ("name", Value::from(name.as_str())),
                    ("nprocs", Value::from(*nprocs as i64)),
                ]),
                tag,
            ),
            Op::Request { topic, payload } => core.request(topic.clone(), payload.clone(), tag),
            // flux-lint: allow(panic) — an API misuse by the script
            // driver (both drivers special-case Pause before calling
            // here), not a runtime input.
            Op::Pause(_) => panic!("Op::Pause has no wire request; script drivers handle it"),
        }
    }
}

/// The recorded outcome of one script run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Completion time of each op, in script order.
    pub op_done: Vec<SimTime>,
    /// Error number per op (0 = success).
    pub op_err: Vec<u32>,
    /// Raw reply payloads per op.
    pub replies: Vec<Value>,
    /// True once every op has completed.
    pub finished: bool,
}

/// Shared handle to an outcome, readable after the simulation runs.
pub type OutcomeHandle = Rc<RefCell<Outcome>>;

/// The scripted client actor.
pub struct ScriptClient {
    broker: ActorId,
    core: ClientCore,
    ops: Vec<Op>,
    next: usize,
    outcome: OutcomeHandle,
}

impl ScriptClient {
    /// Attaches a scripted client to `rank` in `session`, returning the
    /// outcome handle (inspect it after running the engine).
    pub fn spawn(session: &mut SimSession, rank: Rank, ops: Vec<Op>) -> OutcomeHandle {
        let outcome: OutcomeHandle = Rc::new(RefCell::new(Outcome::default()));
        let handle = Rc::clone(&outcome);
        session.add_client(rank, move |broker, client_id| {
            Box::new(ScriptClient {
                broker,
                core: ClientCore::new(rank, client_id),
                ops,
                next: 0,
                outcome: handle,
            })
        });
        outcome
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_>) {
        let Some(op) = self.ops.get(self.next).cloned() else {
            self.outcome.borrow_mut().finished = true;
            return;
        };
        if let Op::Pause(ns) = op {
            ctx.set_timer(SimDuration::from_nanos(ns), self.next as u64);
            return;
        }
        let msg = op.to_request(&mut self.core, self.next as u64);
        ctx.send(self.broker, msg);
    }

    fn record(&mut self, now: SimTime, errnum: u32, reply: Value) {
        let mut out = self.outcome.borrow_mut();
        out.op_done.push(now);
        out.op_err.push(errnum);
        out.replies.push(reply);
    }
}

impl Actor for ScriptClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.issue_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, msg: Message) {
        match self.core.deliver(msg) {
            Delivery::Response { tag, msg } => {
                // Under fault injection a duplicated request can produce a
                // duplicated response; only the expected tag advances the
                // script, stale tags are dropped.
                if tag as usize != self.next {
                    return;
                }
                self.record(ctx.now(), msg.header.errnum, msg.payload.into_value());
                self.next += 1;
                self.issue_next(ctx);
            }
            Delivery::Event(_) | Delivery::Unmatched(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // A Pause op elapsed.
        if token as usize != self.next {
            return;
        }
        self.record(ctx.now(), 0, Value::Null);
        self.next += 1;
        self.issue_next(ctx);
    }
}
