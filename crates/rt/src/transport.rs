//! Runtime-selectable transports.
//!
//! Two levels of abstraction:
//!
//! * [`Transport`] — an object-safe factory for *live* (wall-clock)
//!   sessions: implemented by [`ThreadTransport`] (in-process channels)
//!   and [`TcpTransport`] (loopback TCP links). The `flux` CLI and
//!   integration tests pick one at runtime via [`TransportKind`].
//! * [`ScriptTransport`] — runs a batch of scripted client workloads
//!   ([`Op`] sequences) to completion and reports per-op results. All
//!   three runtimes implement it: [`SimTransport`] in virtual time, and
//!   every live [`Transport`] via a blanket impl that drives each script
//!   on its own thread. The KAP benchmark runner is written against this
//!   trait, so the same workload runs on the simulator or over real
//!   sockets.

use crate::faults::FaultPlan;
use crate::live::LiveClient;
use crate::script::{Op, ScriptClient};
use crate::sim::SimSession;
use crate::tcp::{TcpConfig, TcpSession};
use crate::threads::ThreadSession;
use flux_broker::client::{ClientCore, Delivery};
use flux_broker::{BrokerConfig, CommsModule, RankOverlay};
use flux_sim::{NetParams, SimTime};
use flux_wire::{errnum, Rank};
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// The per-rank module factory every transport consumes.
pub type ModuleFactory<'a> = &'a (dyn Fn(Rank) -> Vec<Box<dyn CommsModule>> + 'a);

/// An object-safe factory for live comms sessions, so callers can pick
/// the wire at runtime (`--transport tcp`).
pub trait Transport {
    /// Short name ("threads", "tcp").
    fn name(&self) -> &'static str;

    /// Opens a session builder for `size` brokers with tree `arity`.
    fn open(&self, size: u32, arity: u32, factory: ModuleFactory<'_>) -> Box<dyn SessionBuilder>;

    /// How long a script driver waits for any single op's reply on this
    /// transport before recording `ETIMEDOUT`. Fault-injecting wrappers
    /// shorten this so lossy runs don't stall for the full default.
    fn op_timeout(&self) -> Duration {
        LIVE_OP_TIMEOUT
    }
}

/// A live session being assembled: attach clients, then start.
pub trait SessionBuilder {
    /// Attaches a client to `rank`'s broker.
    fn attach_client(&mut self, rank: Rank) -> LiveClient;

    /// Applies a fault-injection plan to the session's links.
    fn set_faults(&mut self, plan: &FaultPlan);

    /// Launches the session.
    fn start(self: Box<Self>) -> Box<dyn LiveSession>;
}

/// A running live session.
pub trait LiveSession {
    /// Session size in brokers.
    fn size(&self) -> u32;

    /// Stops the session and joins its threads.
    fn shutdown(self: Box<Self>);
}

/// The in-process channel transport ([`ThreadSession`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadTransport;

impl Transport for ThreadTransport {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn open(&self, size: u32, arity: u32, factory: ModuleFactory<'_>) -> Box<dyn SessionBuilder> {
        Box::new(ThreadSession::builder(size, arity, factory))
    }
}

impl SessionBuilder for crate::threads::ThreadSessionBuilder {
    fn attach_client(&mut self, rank: Rank) -> LiveClient {
        crate::threads::ThreadSessionBuilder::attach_client(self, rank)
    }

    fn set_faults(&mut self, plan: &FaultPlan) {
        crate::threads::ThreadSessionBuilder::set_faults(self, plan);
    }

    fn start(self: Box<Self>) -> Box<dyn LiveSession> {
        Box::new((*self).start())
    }
}

impl LiveSession for ThreadSession {
    fn size(&self) -> u32 {
        ThreadSession::size(self)
    }

    fn shutdown(self: Box<Self>) {
        ThreadSession::shutdown(*self)
    }
}

/// The loopback TCP transport ([`TcpSession`]).
#[derive(Clone, Debug, Default)]
pub struct TcpTransport {
    /// Link tuning applied to every session this transport opens.
    pub config: TcpConfig,
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn open(&self, size: u32, arity: u32, factory: ModuleFactory<'_>) -> Box<dyn SessionBuilder> {
        Box::new(TcpSession::builder(size, arity, factory).with_config(self.config.clone()))
    }
}

impl SessionBuilder for crate::tcp::TcpSessionBuilder {
    fn attach_client(&mut self, rank: Rank) -> LiveClient {
        crate::tcp::TcpSessionBuilder::attach_client(self, rank)
    }

    fn set_faults(&mut self, plan: &FaultPlan) {
        crate::tcp::TcpSessionBuilder::set_faults(self, plan);
    }

    fn start(self: Box<Self>) -> Box<dyn LiveSession> {
        Box::new((*self).start())
    }
}

impl LiveSession for TcpSession {
    fn size(&self) -> u32 {
        TcpSession::size(self)
    }

    fn shutdown(self: Box<Self>) {
        TcpSession::shutdown(*self)
    }
}

/// A [`Transport`] decorator that applies a [`FaultPlan`] to every
/// session the inner transport opens, so the same seeded fault schedule
/// that drives a simulator run can wrap the threads or TCP runtime.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    op_timeout: Duration,
}

impl FaultyTransport {
    /// Wraps `inner` so every opened session runs under `plan`. The
    /// per-op script timeout defaults to 2 seconds: lossy links make
    /// lost ops routine, and waiting the full [`LIVE_OP_TIMEOUT`] for
    /// each would stall chaos runs.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> FaultyTransport {
        FaultyTransport { inner, plan, op_timeout: Duration::from_secs(2) }
    }

    /// Overrides the per-op script timeout.
    pub fn with_op_timeout(mut self, timeout: Duration) -> FaultyTransport {
        self.op_timeout = timeout;
        self
    }

    /// The plan applied to opened sessions.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Transport for FaultyTransport {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn open(&self, size: u32, arity: u32, factory: ModuleFactory<'_>) -> Box<dyn SessionBuilder> {
        let mut builder = self.inner.open(size, arity, factory);
        builder.set_faults(&self.plan);
        builder
    }

    fn op_timeout(&self) -> Duration {
        self.op_timeout
    }
}

/// Which runtime hosts a session. Parsed from CLI flags and test
/// environment variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Discrete-event simulator, virtual time.
    Sim,
    /// OS threads with channel links.
    Threads,
    /// One poll-based reactor thread per broker over loopback TCP links
    /// (also parses as `"reactor"`).
    Tcp,
}

impl TransportKind {
    /// The live transport for this kind, or `None` for the simulator
    /// (which runs in virtual time and has no live session form).
    pub fn live(&self) -> Option<Box<dyn Transport>> {
        match self {
            TransportKind::Sim => None,
            TransportKind::Threads => Some(Box::new(ThreadTransport)),
            TransportKind::Tcp => Some(Box::new(TcpTransport::default())),
        }
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(TransportKind::Sim),
            "threads" => Ok(TransportKind::Threads),
            // "reactor" names the implementation, "tcp" the wire; the
            // TCP transport *is* the reactor since ROADMAP item 3 landed.
            "tcp" | "reactor" => Ok(TransportKind::Tcp),
            other => {
                Err(format!("unknown transport {other:?} (want sim, threads, tcp, or reactor)"))
            }
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Sim => "sim",
            TransportKind::Threads => "threads",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// Per-script results from a [`ScriptTransport`] run, mirroring the
/// simulator's [`crate::script::Outcome`] in plain nanoseconds.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ScriptOutcome {
    /// Completion time of each op (ns since the session epoch).
    pub op_done_ns: Vec<u64>,
    /// Error number per op (0 = success).
    pub op_err: Vec<u32>,
    /// Raw reply payloads per op.
    pub replies: Vec<flux_value::Value>,
    /// True once every op completed.
    pub finished: bool,
}

/// What a scripted run produced, across all scripts.
///
/// Equality compares the *observable* results (outcomes, virtual-time
/// makespan, event and byte counts). The wall-clock diagnostics
/// (`wall_ns`, `events_per_sec`) are excluded — they vary run to run on
/// the same input, and determinism tests compare whole reports.
#[derive(Debug, Default, Clone)]
pub struct ScriptReport {
    /// One outcome per submitted script, in submission order.
    pub outcomes: Vec<ScriptOutcome>,
    /// When the run finished (ns since the session epoch; virtual or
    /// wall-clock depending on the transport).
    pub makespan_ns: u64,
    /// Engine events processed (simulator only; 0 on live transports).
    pub events: u64,
    /// Bytes moved over all links (simulator only; 0 on live transports).
    pub bytes: u64,
    /// Host wall-clock the engine spent dispatching, ns (simulator only;
    /// live transports' makespan *is* wall time, so this stays 0).
    pub wall_ns: u64,
    /// The engine's self-reported dispatch rate, events per wall-clock
    /// second (simulator only). Diagnostic — never compare across hosts.
    pub events_per_sec: f64,
}

impl PartialEq for ScriptReport {
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.makespan_ns == other.makespan_ns
            && self.events == other.events
            && self.bytes == other.bytes
    }
}

/// Runs batches of scripted clients to completion. The abstraction the
/// KAP runner targets: one workload definition, any runtime.
pub trait ScriptTransport {
    /// Short name ("sim", "threads", "tcp").
    fn name(&self) -> &'static str;

    /// Builds a session, runs every `(rank, ops)` script against it, and
    /// tears the session down.
    fn run_scripts(
        &self,
        size: u32,
        arity: u32,
        factory: ModuleFactory<'_>,
        scripts: Vec<(Rank, Vec<Op>)>,
    ) -> ScriptReport;
}

/// The discrete-event simulator as a script runner.
#[derive(Clone, Debug, Default)]
pub struct SimTransport {
    /// Simulated network parameters.
    pub net: NetParams,
    /// Fault-injection plan applied to every broker link.
    pub faults: Option<FaultPlan>,
    /// Virtual-time deadline for the run. Required when the module set
    /// generates periodic traffic forever (e.g. heartbeats), since the
    /// event heap never drains on its own then.
    pub deadline_ns: Option<u64>,
    /// Topology of the rank-addressed RPC overlay. The default ring is
    /// the paper prototype's debugging choice; sharded KVS sessions
    /// route commit parts rank-addressed on the hot path and should run
    /// the O(log N) tree overlay instead.
    pub overlay: RankOverlay,
}

impl ScriptTransport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_scripts(
        &self,
        size: u32,
        arity: u32,
        factory: ModuleFactory<'_>,
        scripts: Vec<(Rank, Vec<Op>)>,
    ) -> ScriptReport {
        let overlay = self.overlay;
        let config =
            move |r: Rank| BrokerConfig::new(r, size).with_arity(arity).with_rank_overlay(overlay);
        let mut session = match &self.faults {
            Some(plan) => {
                SimSession::with_config_and_faults(size, self.net, config, factory, plan)
            }
            None => SimSession::with_config(size, self.net, config, factory),
        };
        let handles: Vec<_> = scripts
            .into_iter()
            .map(|(rank, ops)| ScriptClient::spawn(&mut session, rank, ops))
            .collect();
        let end = match self.deadline_ns {
            Some(ns) => session.run_until(SimTime::from_nanos(ns)),
            // Unbudgeted quiescence runs cannot livelock-error; fall back
            // to the error's timestamp rather than panicking if they ever
            // could.
            None => match session.run_until_quiet(None) {
                Ok(t) => t,
                Err(e) => e.at,
            },
        };
        let stats = session.engine().stats();
        let outcomes = handles
            .into_iter()
            .map(|h| {
                let o = h.borrow();
                ScriptOutcome {
                    op_done_ns: o.op_done.iter().map(|t| t.as_nanos()).collect(),
                    op_err: o.op_err.clone(),
                    replies: o.replies.clone(),
                    finished: o.finished,
                }
            })
            .collect();
        let throughput = session.engine().throughput();
        ScriptReport {
            outcomes,
            makespan_ns: end.as_nanos(),
            events: stats.events,
            bytes: stats.bytes_delivered,
            wall_ns: throughput.wall.as_nanos() as u64,
            events_per_sec: throughput.events_per_sec,
        }
    }
}

/// How long a live script driver waits for any single op's reply before
/// recording `ETIMEDOUT` and abandoning the script.
pub const LIVE_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Drives one op script synchronously over a live client, stamping
/// completion times relative to `epoch`. Any single op left unanswered
/// for `op_timeout` records `ETIMEDOUT` and abandons the script.
pub fn drive_script(
    client: &LiveClient,
    ops: &[Op],
    epoch: Instant,
    op_timeout: Duration,
) -> ScriptOutcome {
    let mut core = ClientCore::new(client.rank, client.client_id);
    let mut out = ScriptOutcome::default();
    for (idx, op) in ops.iter().enumerate() {
        let tag = idx as u64;
        if let Op::Pause(ns) = op {
            // flux-lint: allow(block) — script drivers run on their own
            // benchmark-harness threads; Pause *means* wall-clock sleep
            // (it models client think time between ops).
            std::thread::sleep(Duration::from_nanos(*ns));
            out.op_done_ns.push(epoch.elapsed().as_nanos() as u64);
            out.op_err.push(0);
            out.replies.push(flux_value::Value::Null);
            continue;
        }
        client.send(op.to_request(&mut core, tag));
        let deadline = Instant::now() + op_timeout;
        let reply = loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break None;
            }
            let Some(msg) = client.recv_timeout(left) else { continue };
            match core.deliver(msg) {
                Delivery::Response { tag: t, msg } if t == tag => break Some(msg),
                Delivery::Response { .. } | Delivery::Event(_) | Delivery::Unmatched(_) => continue,
            }
        };
        match reply {
            Some(msg) => {
                out.op_done_ns.push(epoch.elapsed().as_nanos() as u64);
                out.op_err.push(msg.header.errnum);
                out.replies.push(msg.payload.into_value());
            }
            None => {
                out.op_done_ns.push(epoch.elapsed().as_nanos() as u64);
                out.op_err.push(errnum::ETIMEDOUT);
                out.replies.push(flux_value::Value::Null);
                return out; // abandoned: finished stays false
            }
        }
    }
    out.finished = true;
    out
}

impl<T: Transport + ?Sized> ScriptTransport for T {
    fn name(&self) -> &'static str {
        Transport::name(self)
    }

    fn run_scripts(
        &self,
        size: u32,
        arity: u32,
        factory: ModuleFactory<'_>,
        scripts: Vec<(Rank, Vec<Op>)>,
    ) -> ScriptReport {
        let mut builder = self.open(size, arity, factory);
        let clients: Vec<LiveClient> =
            scripts.iter().map(|(rank, _)| builder.attach_client(*rank)).collect();
        let epoch = Instant::now();
        let op_timeout = self.op_timeout();
        let session = builder.start();
        let drivers: Vec<_> = clients
            .into_iter()
            .zip(scripts)
            .map(|(client, (_, ops))| {
                std::thread::Builder::new()
                    .name(format!("flux-script-{}", client.rank.0))
                    .spawn(move || drive_script(&client, &ops, epoch, op_timeout))
                    // flux-lint: allow(panic) — benchmark-harness setup;
                    // failing to spawn a driver invalidates the run.
                    .expect("spawn script driver")
            })
            .collect();
        // flux-lint: allow(panic) — propagating a driver thread's panic
        // into the harness is the point: a crashed script must fail the
        // benchmark run, not produce a partial report.
        // flux-lint: allow(block) — harness barrier: run_scripts *is*
        // the wait for every script driver to finish; nothing else runs
        // on this thread until they do.
        let outcomes: Vec<ScriptOutcome> =
            drivers.into_iter().map(|d| d.join().expect("script driver panicked")).collect();
        let makespan_ns = epoch.elapsed().as_nanos() as u64;
        session.shutdown();
        ScriptReport { outcomes, makespan_ns, ..ScriptReport::default() }
    }
}
