//! Comms sessions on the discrete-event simulator.

use crate::faults::{FaultPlan, LinkFaults};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule, Input, Output};
use flux_sim::{Actor, ActorId, Ctx, Engine, NetParams, SimDuration, SimTime};
use flux_wire::{Message, MsgType, Plane, Rank};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Who an actor id belongs to, from a broker's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PeerKind {
    Broker(Rank),
    Client(ClientId),
}

/// Shared address book mapping actor ids to session roles.
///
/// Routing is dense: actor ids and ranks are small consecutive integers
/// (engine slab indices / session ranks), so every per-delivery lookup is
/// a `Vec` index instead of a hash — at 8192-rank KAP scale the routing
/// table is consulted on every one of hundreds of thousands of hops.
#[derive(Default)]
struct AddressBook {
    /// Peer role, indexed by actor id. `None` = unknown or unregistered
    /// (e.g. a killed broker).
    by_actor: Vec<Option<PeerKind>>,
    /// Broker actor, indexed by rank. `None` after the rank was killed.
    broker_of_rank: Vec<Option<ActorId>>,
    /// Client actor, indexed by broker actor id then broker-local client
    /// id (clients per broker are few and consecutive).
    client_actor: Vec<Vec<Option<ActorId>>>,
}

impl AddressBook {
    fn slot<T>(v: &mut Vec<Option<T>>, i: usize) -> &mut Option<T> {
        if v.len() <= i {
            v.resize_with(i + 1, || None);
        }
        &mut v[i]
    }

    fn register_broker(&mut self, actor: ActorId, rank: Rank) {
        *Self::slot(&mut self.by_actor, actor) = Some(PeerKind::Broker(rank));
        *Self::slot(&mut self.broker_of_rank, rank.0 as usize) = Some(actor);
    }

    fn register_client(&mut self, broker_actor: ActorId, client: ClientId, actor: ActorId) {
        *Self::slot(&mut self.by_actor, actor) = Some(PeerKind::Client(client));
        if self.client_actor.len() <= broker_actor {
            self.client_actor.resize_with(broker_actor + 1, Vec::new);
        }
        *Self::slot(&mut self.client_actor[broker_actor], client as usize) = Some(actor);
    }

    /// Forgets a killed broker: it stops being a routable destination and
    /// a recognized sender.
    fn unregister_broker(&mut self, actor: ActorId, rank: Rank) {
        if let Some(s) = self.by_actor.get_mut(actor) {
            *s = None;
        }
        if let Some(s) = self.broker_of_rank.get_mut(rank.0 as usize) {
            *s = None;
        }
    }

    fn peer_of(&self, actor: ActorId) -> Option<PeerKind> {
        self.by_actor.get(actor).copied().flatten()
    }

    fn broker_of(&self, rank: Rank) -> Option<ActorId> {
        self.broker_of_rank.get(rank.0 as usize).copied().flatten()
    }

    fn client_of(&self, broker_actor: ActorId, client: ClientId) -> Option<ActorId> {
        self.client_actor
            .get(broker_actor)
            .and_then(|v| v.get(client as usize))
            .copied()
            .flatten()
    }
}

/// Infers the plane a message travelled on from its shape: events use the
/// event plane, rank-addressed requests/responses the ring, the rest the
/// tree. (The sans-io broker only branches on message type and direction,
/// so this reconstruction is exact.)
fn plane_of(msg: &Message) -> Plane {
    match msg.header.msg_type {
        MsgType::Event => Plane::Event,
        _ if msg.header.dst.is_some() => Plane::Ring,
        _ => Plane::Tree,
    }
}

/// A bounded [`SimSession::run_until_quiet`] run exhausted its event
/// budget with events still pending: the schedule livelocked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Livelock {
    /// Virtual time when the budget ran out.
    pub at: SimTime,
    /// The budget that was exhausted.
    pub budget: u64,
}

impl std::fmt::Display for Livelock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event budget {} exhausted at t={} with events still pending", self.budget, self.at)
    }
}

impl std::error::Error for Livelock {}

/// The actor hosting one broker.
struct BrokerActor {
    broker: Broker,
    book: Rc<RefCell<AddressBook>>,
    /// Fault injection for this broker's outbound links (and its own
    /// blackout state), when the session carries a [`FaultPlan`].
    faults: Option<LinkFaults>,
    started: bool,
}

impl BrokerActor {
    fn absorb(&mut self, ctx: &mut Ctx<'_>, outs: Vec<Output>) {
        let now_ns = ctx.now().as_nanos();
        for out in outs {
            match out {
                Output::ToBroker { plane, to, msg } => {
                    let target = self.book.borrow().broker_of(to);
                    let Some(target) = target else { continue };
                    match &mut self.faults {
                        None => ctx.send(target, msg),
                        Some(f) => {
                            // The event plane needs per-link FIFO (its
                            // seq dedup drops reordered events), so
                            // delays are suppressed there.
                            let fate = if matches!(plane, Plane::Event) {
                                f.fate_ordered(now_ns, to)
                            } else {
                                f.fate(now_ns, to)
                            };
                            for &extra in &fate.copies {
                                ctx.send_delayed(
                                    target,
                                    msg.clone(),
                                    SimDuration::from_nanos(extra),
                                );
                            }
                        }
                    }
                }
                Output::ToClient { client, msg } => {
                    // A blacked-out broker cannot answer its clients.
                    if self.faults.as_ref().is_some_and(|f| f.silenced(now_ns)) {
                        continue;
                    }
                    let target = self.book.borrow().client_of(ctx.self_id(), client);
                    if let Some(target) = target {
                        ctx.send(target, msg);
                    }
                }
                Output::SetTimer { delay_ns, token } => {
                    ctx.set_timer(SimDuration::from_nanos(delay_ns), token);
                }
            }
        }
    }

    /// True if this broker is inside a blackout window: it processes
    /// nothing, exactly like a crashed process (its state freezes until
    /// the window ends — the restart model).
    fn silenced(&self, now_ns: u64) -> bool {
        self.faults.as_ref().is_some_and(|f| f.silenced(now_ns))
    }
}

impl Actor for BrokerActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(!self.started);
        self.started = true;
        let outs = self.broker.start(ctx.now().as_nanos());
        self.absorb(ctx, outs);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Message) {
        if self.silenced(ctx.now().as_nanos()) {
            return;
        }
        let kind = self.book.borrow().peer_of(from);
        let input = match kind {
            Some(PeerKind::Broker(rank)) => {
                Input::FromBroker { plane: plane_of(&msg), from: rank, msg }
            }
            Some(PeerKind::Client(client)) => Input::FromClient { client, msg },
            None => return, // unknown sender (killed and unregistered)
        };
        let outs = self.broker.handle(ctx.now().as_nanos(), input);
        self.absorb(ctx, outs);
    }

    // Timers still run during a blackout (absorb suppresses their
    // outputs): skipping them would break the re-arm chains periodic
    // modules rely on, leaving a revived broker with dead timers.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let outs = self.broker.handle(ctx.now().as_nanos(), Input::Timer { token });
        self.absorb(ctx, outs);
    }
}

/// A full comms session on the simulator: one node and one broker per
/// rank, plus any client-process actors attached to brokers.
///
/// # Example
///
/// ```
/// use flux_rt::sim::SimSession;
/// use flux_sim::NetParams;
///
/// let mut session = SimSession::new(8, 2, NetParams::default(), |_rank| {
///     vec![Box::new(flux_kvs::KvsModule::new()) as Box<dyn flux_broker::CommsModule>]
/// });
/// session.run_until_quiet(None).expect("unbounded runs cannot livelock");
/// assert!(session.engine().stats().messages_delivered > 0 || true);
/// ```
pub struct SimSession {
    engine: Engine,
    book: Rc<RefCell<AddressBook>>,
    size: u32,
    next_client: HashMap<Rank, ClientId>,
}

impl SimSession {
    /// Builds a session of `size` brokers (one node each) with tree
    /// `arity`; `factory` produces each rank's module set.
    pub fn new<F>(size: u32, arity: u32, params: NetParams, factory: F) -> SimSession
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        Self::with_config(
            size,
            params,
            |r| BrokerConfig::new(r, size).with_arity(arity),
            factory,
        )
    }

    /// Like [`SimSession::new`] with a [`FaultPlan`] applied to every
    /// broker's links: the plan plays out in virtual time, so the whole
    /// faulty run is bit-reproducible from the plan's seed.
    pub fn new_with_faults<F>(
        size: u32,
        arity: u32,
        params: NetParams,
        plan: &FaultPlan,
        factory: F,
    ) -> SimSession
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        Self::build(
            size,
            params,
            |r| BrokerConfig::new(r, size).with_arity(arity),
            factory,
            Some(plan),
        )
    }

    /// Like [`SimSession::with_config`] with a [`FaultPlan`] applied to
    /// every broker's links — full per-rank config control (overlay,
    /// heartbeat, arity) under a deterministic fault schedule.
    pub fn with_config_and_faults<C, F>(
        size: u32,
        params: NetParams,
        config: C,
        factory: F,
        plan: &FaultPlan,
    ) -> SimSession
    where
        C: Fn(Rank) -> BrokerConfig,
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        Self::build(size, params, config, factory, Some(plan))
    }

    /// Like [`SimSession::new`] with full per-rank config control.
    pub fn with_config<C, F>(size: u32, params: NetParams, config: C, factory: F) -> SimSession
    where
        C: Fn(Rank) -> BrokerConfig,
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        Self::build(size, params, config, factory, None)
    }

    fn build<C, F>(
        size: u32,
        params: NetParams,
        config: C,
        factory: F,
        faults: Option<&FaultPlan>,
    ) -> SimSession
    where
        C: Fn(Rank) -> BrokerConfig,
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut engine = Engine::new(params);
        let book = Rc::new(RefCell::new(AddressBook::default()));
        for r in 0..size {
            let rank = Rank(r);
            let node = engine.add_node();
            let broker = Broker::new(config(rank), factory(rank));
            let actor = engine.add_actor(
                node,
                Box::new(BrokerActor {
                    broker,
                    book: Rc::clone(&book),
                    faults: faults.filter(|p| !p.is_empty()).map(|p| p.for_sender(rank)),
                    started: false,
                }),
            );
            book.borrow_mut().register_broker(actor, rank);
        }
        SimSession { engine, book, size, next_client: HashMap::new() }
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The underlying engine (stats, clock, failure injection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The actor id of a rank's broker.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the session or its broker was killed.
    pub fn broker_actor(&self, rank: Rank) -> ActorId {
        // flux-lint: allow(panic) — an out-of-session or killed rank is
        // caller error; drivers check `is_broker_actor` first.
        self.book.borrow().broker_of(rank).expect("no live broker for rank")
    }

    /// True if `actor` is one of the session's broker actors (as opposed
    /// to an attached client process). Controlled-scheduling drivers use
    /// this to restrict fault-style choices (e.g. frame duplication) to
    /// broker-to-broker links, matching the fault layer's model.
    pub fn is_broker_actor(&self, actor: ActorId) -> bool {
        matches!(self.book.borrow().peer_of(actor), Some(PeerKind::Broker(_)))
    }

    /// Attaches a client-process actor to `rank`'s broker, placed on the
    /// broker's node (IPC-class links). The factory receives
    /// `(broker_actor, client_id)`; the actor it returns talks to the
    /// broker by sending [`Message`]s to `broker_actor`.
    pub fn add_client<F>(&mut self, rank: Rank, make: F) -> ActorId
    where
        F: FnOnce(ActorId, ClientId) -> Box<dyn Actor>,
    {
        let broker_actor = self.broker_actor(rank);
        let node = self.engine.node_of(broker_actor);
        let client_id = {
            let slot = self.next_client.entry(rank).or_insert(0);
            let id = *slot;
            *slot += 1;
            id
        };
        let actor = self.engine.add_actor(node, make(broker_actor, client_id));
        self.book.borrow_mut().register_client(broker_actor, client_id, actor);
        actor
    }

    /// Kills a broker (failure injection): the actor dies and the address
    /// book forgets it so in-flight traffic is dropped, as on a real node
    /// failure. The `live` module will detect it via missed hellos.
    pub fn kill_broker(&mut self, rank: Rank) {
        assert!(!rank.is_root(), "root failure ends the session");
        let actor = self.broker_actor(rank);
        self.engine.kill(actor);
        // Forget the dead broker so survivors neither route to it nor
        // accept its in-flight traffic: a message already on the wire
        // from the victim now hits the unknown-sender path and is
        // ignored, as on a real node failure.
        self.book.borrow_mut().unregister_broker(actor, rank);
    }

    /// Runs until the event heap drains; returns the final virtual time.
    ///
    /// With `budget = Some(n)` at most `n` further events are processed;
    /// if the session still has pending events after that, the run is
    /// livelocked (a protocol ping-pong or a runaway schedule) and a
    /// [`Livelock`] error is returned instead of spinning forever. With
    /// `budget = None` the call cannot fail.
    pub fn run_until_quiet(&mut self, budget: Option<u64>) -> Result<SimTime, Livelock> {
        match budget {
            None => Ok(self.engine.run()),
            Some(n) => {
                let (at, quiet) = self.engine.run_budgeted(n);
                if quiet {
                    Ok(at)
                } else {
                    Err(Livelock { at, budget: n })
                }
            }
        }
    }

    /// Runs until the given virtual deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.engine.run_until(deadline)
    }
}
