//! Transport-conformance battery: one set of checks, every runtime.
//!
//! Each `check_*` function drives a full behavioural scenario —
//! handshake RPC, KVS put/commit/get + barrier, watch streams, pipelined
//! requests, a 16-broker fence, the stale-read guard, ordered shutdown
//! under load — against any [`Transport`] (or [`ScriptTransport`] for
//! the scripted scenarios). A transport that passes the battery is
//! interchangeable with the others for every workload in the tree.
//!
//! Tests instantiate the battery with [`transport_conformance!`]:
//!
//! ```ignore
//! flux_rt::transport_conformance!(reactor_tcp, flux_rt::transport::TcpTransport::default());
//! ```
//!
//! which expands to one `#[test]` per check inside a `mod reactor_tcp`.
//! The checks are ordinary functions so chaos or bench code can also
//! call them directly against decorated transports (e.g.
//! [`crate::transport::FaultyTransport`]).

use crate::live::LiveClient;
use crate::script::Op;
use crate::transport::{ScriptTransport, Transport};
use flux_broker::client::{ClientCore, Delivery};
use flux_broker::CommsModule;
use flux_modules::{standard_modules, BarrierModule};
use flux_proto::{BarrierMethod, CmbMethod, KvsMethod};
use flux_value::Value;
use flux_wire::{Message, Rank, Topic};
use std::time::{Duration, Instant};

/// How long any single conformance step may wait for a reply.
pub const CONFORMANCE_TIMEOUT: Duration = Duration::from_secs(10);

fn kvs_modules(_r: Rank) -> Vec<Box<dyn CommsModule>> {
    vec![
        Box::new(flux_kvs::KvsModule::new()) as Box<dyn CommsModule>,
        Box::new(BarrierModule::new()),
    ]
}

/// Waits for the response carrying `tag`, delivering (and discarding)
/// interleaved events and other responses through `core` — the MsgId
/// matching path pipelined clients rely on.
fn await_reply(client: &LiveClient, core: &mut ClientCore, tag: u64, what: &str) -> Message {
    let deadline = Instant::now() + CONFORMANCE_TIMEOUT;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(!left.is_zero(), "conformance: timed out waiting for {what}");
        let Some(msg) = client.recv_timeout(left) else { continue };
        match core.deliver(msg) {
            Delivery::Response { tag: t, msg } if t == tag => return msg,
            Delivery::Response { .. } | Delivery::Event(_) | Delivery::Unmatched(_) => continue,
        }
    }
}

/// One synchronous RPC: send, then wait for the matching reply.
fn rpc(
    client: &LiveClient,
    core: &mut ClientCore,
    topic: Topic,
    payload: Value,
    tag: u64,
    what: &str,
) -> Message {
    client.send(core.request(topic, payload, tag));
    await_reply(client, core, tag, what)
}

/// Handshake + RPC reachability: a client attached to one broker pings
/// its local broker and then, rank-addressed, every other broker in the
/// session. Every pong must name the broker that answered.
pub fn check_handshake_rpc(t: &dyn Transport) {
    let size = 4u32;
    let mut builder = t.open(size, 2, &|_| standard_modules());
    let client = builder.attach_client(Rank(1));
    let session = builder.start();
    let mut core = ClientCore::new(Rank(1), client.client_id);

    let local =
        rpc(&client, &mut core, CmbMethod::Ping.topic(), Value::object(), 0, "local ping");
    assert!(!local.is_error(), "{}: local ping errored", t.name());
    assert_eq!(local.payload.get("pong").and_then(Value::as_uint), Some(1), "{}", t.name());

    for to in 0..size {
        let tag = 100 + u64::from(to);
        client.send(core.request_to(Rank(to), CmbMethod::Ping.topic(), Value::object(), tag));
        let resp = await_reply(&client, &mut core, tag, "rank-addressed ping");
        assert!(!resp.is_error(), "{}: ping to rank {to} errored", t.name());
        assert_eq!(
            resp.payload.get("pong").and_then(Value::as_uint),
            Some(u64::from(to)),
            "{}: wrong broker answered the ping to rank {to}",
            t.name()
        );
    }
    session.shutdown();
}

/// The core KVS flow across brokers — put + commit on one leaf, a
/// version-waited read on another — plus a two-party barrier.
pub fn check_put_commit_get_and_barrier(t: &dyn Transport) {
    let size = 8u32;
    let mut builder = t.open(size, 2, &kvs_modules);
    let writer = builder.attach_client(Rank(5));
    let reader = builder.attach_client(Rank(2));
    let b1 = builder.attach_client(Rank(0));
    let b2 = builder.attach_client(Rank(7));
    let session = builder.start();

    let mut wc = ClientCore::new(Rank(5), writer.client_id);
    let put = rpc(
        &writer,
        &mut wc,
        KvsMethod::Put.topic(),
        Value::from_pairs([("k", Value::from("t.x")), ("v", Value::Int(11))]),
        1,
        "put ack",
    );
    assert!(!put.is_error(), "{}: put", t.name());
    let commit =
        rpc(&writer, &mut wc, KvsMethod::Commit.topic(), Value::object(), 2, "commit reply");
    assert!(!commit.is_error(), "{}: commit", t.name());
    let version = commit.payload.get("version").and_then(Value::as_uint).unwrap_or(0);
    assert!(version >= 1, "{}: commit version {version}", t.name());

    let mut rc = ClientCore::new(Rank(2), reader.client_id);
    let wait = rpc(
        &reader,
        &mut rc,
        KvsMethod::WaitVersion.topic(),
        Value::from_pairs([("version", Value::from(version as i64))]),
        1,
        "wait_version reply",
    );
    assert!(!wait.is_error(), "{}: wait_version", t.name());
    let get = rpc(
        &reader,
        &mut rc,
        KvsMethod::Get.topic(),
        Value::from_pairs([("k", Value::from("t.x"))]),
        2,
        "get reply",
    );
    assert_eq!(get.payload.get("v"), Some(&Value::Int(11)), "{}", t.name());

    // Barrier across two clients on different brokers: neither can be
    // released until both have entered.
    let mut c1 = ClientCore::new(Rank(0), b1.client_id);
    let mut c2 = ClientCore::new(Rank(7), b2.client_id);
    let enter = Value::from_pairs([("name", Value::from("tb")), ("nprocs", Value::Int(2))]);
    b1.send(c1.request(BarrierMethod::Enter.topic(), enter.clone(), 3));
    b2.send(c2.request(BarrierMethod::Enter.topic(), enter, 3));
    assert!(!await_reply(&b1, &mut c1, 3, "b1 released").is_error(), "{}", t.name());
    assert!(!await_reply(&b2, &mut c2, 3, "b2 released").is_error(), "{}", t.name());

    session.shutdown();
}

/// Watch streams: a watcher gets the initial snapshot, then an update
/// pushed by a commit on a different broker.
pub fn check_watch_streams(t: &dyn Transport) {
    let mut builder = t.open(4, 2, &|_r| {
        vec![Box::new(flux_kvs::KvsModule::new()) as Box<dyn CommsModule>]
    });
    let watcher = builder.attach_client(Rank(3));
    let writer = builder.attach_client(Rank(1));
    let session = builder.start();

    let mut wcli = flux_kvs::client::KvsClient::new(Rank(3), watcher.client_id);
    let (wreq, _) = wcli.watch("tw.key", 1);
    watcher.send(wreq);
    let snap = watcher.recv_timeout(CONFORMANCE_TIMEOUT);
    assert!(snap.is_some(), "{}: no initial snapshot", t.name());
    assert_eq!(
        snap.and_then(|m| m.payload.get("v").cloned()),
        Some(Value::Null),
        "{}",
        t.name()
    );

    let mut pcli = flux_kvs::client::KvsClient::new(Rank(1), writer.client_id);
    writer.send(pcli.put("tw.key", Value::Int(5), 1));
    assert!(writer.recv_timeout(CONFORMANCE_TIMEOUT).is_some(), "{}: put ack", t.name());
    writer.send(pcli.commit(2));
    assert!(writer.recv_timeout(CONFORMANCE_TIMEOUT).is_some(), "{}: commit ack", t.name());

    let update = watcher.recv_timeout(CONFORMANCE_TIMEOUT);
    assert_eq!(
        update.and_then(|m| m.payload.get("v").cloned()),
        Some(Value::Int(5)),
        "{}: watch update",
        t.name()
    );
    session.shutdown();
}

/// Pipelining: a client fires a window of requests back-to-back without
/// reading a single reply, then collects them all — every tag answered
/// exactly once, matched by MsgId regardless of arrival order.
pub fn check_pipelined_rpcs(t: &dyn Transport) {
    let window = 32u64;
    let mut builder = t.open(4, 2, &kvs_modules);
    let client = builder.attach_client(Rank(3));
    let session = builder.start();
    let mut core = ClientCore::new(Rank(3), client.client_id);

    for tag in 0..window {
        // Alternate local pings, rank-addressed pings, and KVS puts so
        // the in-flight window spans services and planes.
        let msg = match tag % 3 {
            0 => core.request(CmbMethod::Ping.topic(), Value::object(), tag),
            1 => core.request_to(
                Rank((tag % 4) as u32),
                CmbMethod::Ping.topic(),
                Value::object(),
                tag,
            ),
            _ => core.request(
                KvsMethod::Put.topic(),
                Value::from_pairs([
                    ("k", Value::from(format!("p.k{tag}"))),
                    ("v", Value::Int(tag as i64)),
                ]),
                tag,
            ),
        };
        client.send(msg);
    }

    let mut seen = vec![false; window as usize];
    let deadline = Instant::now() + CONFORMANCE_TIMEOUT;
    let mut answered = 0u64;
    while answered < window {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            !left.is_zero(),
            "{}: pipelined window stalled at {answered}/{window} replies",
            t.name()
        );
        let Some(msg) = client.recv_timeout(left) else { continue };
        match core.deliver(msg) {
            Delivery::Response { tag, msg } => {
                assert!(!msg.is_error(), "{}: tag {tag} errored", t.name());
                let idx = tag as usize;
                assert!(idx < seen.len(), "{}: unknown tag {tag}", t.name());
                assert!(!seen[idx], "{}: tag {tag} answered twice", t.name());
                seen[idx] = true;
                answered += 1;
            }
            Delivery::Event(_) | Delivery::Unmatched(_) => continue,
        }
    }
    assert!(seen.iter().all(|&s| s), "{}: every tag answered", t.name());
    session.shutdown();
}

/// A 16-broker session running a fence across sixteen writers, one per
/// rank — the all-to-all synchronization shape from the paper's KAP
/// benchmark, via the scripted driver.
pub fn check_sixteen_broker_fence(t: &dyn ScriptTransport) {
    let size = 16u32;
    let scripts: Vec<(Rank, Vec<Op>)> = (0..size)
        .map(|r| {
            (
                Rank(r),
                vec![
                    Op::Put { key: format!("c16.k{r}"), val: Value::Int(i64::from(r)) },
                    Op::Fence { name: "c16".into(), nprocs: u64::from(size) },
                    Op::Get { key: format!("c16.k{}", (r + 1) % size) },
                ],
            )
        })
        .collect();
    let report = t.run_scripts(size, 2, &kvs_modules, scripts);
    for (r, o) in report.outcomes.iter().enumerate() {
        assert!(o.finished, "{}: rank {r} unfinished", t.name());
        assert_eq!(o.op_err, [0, 0, 0], "{}: rank {r}", t.name());
        let want = ((r + 1) % size as usize) as i64;
        assert_eq!(
            o.replies[2].get("v"),
            Some(&Value::Int(want)),
            "{}: rank {r} read its neighbour's pre-fence write",
            t.name()
        );
    }
}

/// No stale reads after `wait_version`: the slave-side lookup memo must
/// be invalidated on root switch before any waiter is answered. A reader
/// that waits for version N and then gets a key must see at least the
/// version-N value, never a memoized older object.
pub fn check_no_stale_reads(t: &dyn ScriptTransport) {
    let writer = vec![
        Op::Put { key: "sr.k".into(), val: Value::Int(1) },
        Op::Commit,
        Op::Pause(200_000),
        Op::Put { key: "sr.k".into(), val: Value::Int(2) },
        Op::Commit,
    ];
    let reader = vec![
        Op::WaitVersion(1),
        Op::Get { key: "sr.k".into() }, // populates the lookup memo
        Op::Get { key: "sr.k".into() }, // served from the memo
        Op::WaitVersion(2),
        Op::Get { key: "sr.k".into() }, // must NOT be the memoized v1
    ];
    let scripts = vec![(Rank(1), writer), (Rank(3), reader)];
    let report = t.run_scripts(4, 2, &kvs_modules, scripts);
    for (i, o) in report.outcomes.iter().enumerate() {
        assert!(o.finished, "{}: script {i} unfinished", t.name());
        assert!(
            o.op_err.iter().all(|&e| e == 0),
            "{}: script {i} errors {:?}",
            t.name(),
            o.op_err
        );
    }
    let reader = &report.outcomes[1];
    // The first read happens at version >= 1: value 1 or 2 are both
    // legal (the second commit may already have landed).
    let first = reader.replies[1].get("v").and_then(Value::as_int).unwrap_or(-1);
    assert!(first == 1 || first == 2, "{}: first read {first}", t.name());
    // The memoized re-read must agree with the first (monotonic reads).
    let second = reader.replies[2].get("v").and_then(Value::as_int).unwrap_or(-1);
    assert!(second >= first, "{}: re-read went backwards", t.name());
    // After wait_version(2) only v2 is acceptable.
    let last = reader.replies[4].get("v").and_then(Value::as_int).unwrap_or(-1);
    assert_eq!(last, 2, "{}: stale read after wait_version(2)", t.name());
}

/// Ordered shutdown under load: clients fire a burst of requests and the
/// session is torn down without ever reading the replies. The check is
/// that `shutdown()` returns — every broker thread joins — with traffic
/// still in flight, and does not panic.
pub fn check_ordered_shutdown_under_load(t: &dyn Transport) {
    let mut builder = t.open(8, 2, &kvs_modules);
    let clients: Vec<LiveClient> = (0..4).map(|r| builder.attach_client(Rank(2 * r))).collect();
    let session = builder.start();
    for client in &clients {
        let mut core = ClientCore::new(client.rank, client.client_id);
        for tag in 0..50u64 {
            let msg = if tag % 2 == 0 {
                core.request(
                    KvsMethod::Put.topic(),
                    Value::from_pairs([
                        ("k", Value::from(format!("sd.{}.{tag}", client.rank.0))),
                        ("v", Value::Int(tag as i64)),
                    ]),
                    tag,
                )
            } else {
                core.request(KvsMethod::Commit.topic(), Value::object(), tag)
            };
            client.send(msg);
        }
    }
    // No draining: shutdown must cope with a full inbound queue and
    // replies still buffered outbound.
    session.shutdown();
}

/// Instantiates the full conformance battery as a `mod $name` of
/// `#[test]` functions, each driving one `check_*` against the transport
/// built by `$make` (an expression, evaluated per test).
///
/// ```ignore
/// flux_rt::transport_conformance!(threads, flux_rt::transport::ThreadTransport);
/// flux_rt::transport_conformance!(reactor_tcp, flux_rt::transport::TcpTransport::default());
/// ```
#[macro_export]
macro_rules! transport_conformance {
    ($name:ident, $make:expr) => {
        mod $name {
            #[allow(unused_imports)]
            use super::*;

            #[test]
            fn handshake_rpc() {
                $crate::conformance::check_handshake_rpc(&$make);
            }

            #[test]
            fn put_commit_get_and_barrier() {
                $crate::conformance::check_put_commit_get_and_barrier(&$make);
            }

            #[test]
            fn watch_streams() {
                $crate::conformance::check_watch_streams(&$make);
            }

            #[test]
            fn pipelined_rpcs() {
                $crate::conformance::check_pipelined_rpcs(&$make);
            }

            #[test]
            fn sixteen_broker_fence() {
                $crate::conformance::check_sixteen_broker_fence(&$make);
            }

            #[test]
            fn no_stale_reads() {
                $crate::conformance::check_no_stale_reads(&$make);
            }

            #[test]
            fn ordered_shutdown_under_load() {
                $crate::conformance::check_ordered_shutdown_under_load(&$make);
            }
        }
    };
}
