//! Seeded chaos workloads: random KVS traffic under random fault plans.
//!
//! One `u64` seed reproducibly determines a whole experiment — session
//! size, client placement, the op script each client runs, and the
//! [`FaultPlan`] applied to the links. The chaos test suites sweep seeds
//! and check the resulting observations with
//! [`flux_kvs::history::check`]; a failing seed is a complete repro
//! recipe on its own.
//!
//! Fault-style notes (why the generator is shaped the way it is):
//!
//! * **Drops and blackouts** stall requests (there is no retransmit
//!   layer), so scripts may record only a prefix of their ops — the
//!   history mapping treats an unanswered commit as
//!   [`Event::StagedOnly`] (it may or may not have applied).
//! * **Duplicates** are safe end-to-end: the broker event plane dedups
//!   by sequence number, `kvs.push` and fence batches dedup by id, and
//!   script clients ignore mismatched response tags.
//! * **Fences** require every participant to arrive, so the generator
//!   only emits fence rounds for loss-free styles; a single dropped
//!   contribution would otherwise stall all clients.

use crate::faults::FaultPlan;
use crate::script::Op;
use crate::transport::{ScriptOutcome, ScriptReport, ScriptTransport, SimTransport};
use flux_core::rng::Rng;
use flux_kvs::history::{ClientHistory, Event};
use flux_kvs::shard::{key_on_shard, shard_of_key};
use flux_sim::NetParams;
use flux_value::Value;
use flux_wire::{errnum, Rank};
use std::collections::BTreeMap;

/// The heartbeat period the chaos generator assumes when converting
/// epoch windows to nanoseconds (`BrokerConfig` default).
pub const HB_PERIOD_NS: u64 = 100_000_000;

/// A fully-determined chaos experiment.
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// The seed that produced everything below.
    pub seed: u64,
    /// Session size in brokers.
    pub size: u32,
    /// Tree arity.
    pub arity: u32,
    /// Per-client op scripts, `(rank, ops)`.
    pub scripts: Vec<(Rank, Vec<Op>)>,
    /// The fault plan to apply to the session links.
    pub plan: FaultPlan,
    /// Virtual-time deadline for simulator runs (heartbeats never let
    /// the event heap drain on its own).
    pub deadline_ns: u64,
}

/// Generates the experiment for `seed`.
///
/// `time_scale_ns` sets the magnitude of pauses and injected delays
/// (use ~100ms on the simulator where time is free, a few ms on live
/// transports). `with_kill` additionally blacks out one non-client,
/// non-root broker for a few heartbeat epochs mid-run.
pub fn workload(seed: u64, time_scale_ns: u64, with_kill: bool) -> ChaosWorkload {
    let scale = time_scale_ns.max(2);
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xc4a5));
    let size: u32 = rng.gen_range(5u32..=12);
    let arity: u32 = rng.gen_range(2u32..=3);
    // Leave root (the KVS master) and at least one other rank client-free
    // so a kill never silences a scripted client's own broker.
    let nclients = (rng.gen_range(3u32..=6) as usize).min(size as usize - 2);
    let mut ranks: Vec<u32> = (1..size).collect();
    for i in (1..ranks.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        ranks.swap(i, j);
    }
    let client_ranks: Vec<u32> = ranks[..nclients].to_vec();

    // Fault style first: the workload shape depends on it (fences only
    // when nothing is dropped).
    let style: u32 = rng.gen_range(0u32..4);
    let mut plan = FaultPlan::new(seed);
    let lossless = match style {
        0 => {
            plan = plan.delay(0.02, scale);
            true
        }
        1 => {
            plan = plan.drop(f64::from(rng.gen_range(1u32..=20)) / 1000.0);
            false
        }
        2 => {
            plan = plan.duplicate(0.02).delay(0.05, scale * 2);
            true
        }
        _ => {
            plan = plan.drop(0.005).duplicate(0.01).delay(0.02, scale);
            false
        }
    };
    let mut window_end_ns = 0u64;
    if with_kill {
        // flux-lint: allow(panic) — test-harness scenario generator; the
        // caller guarantees size > nclients, and a bad plan should fail
        // the chaos suite loudly.
        let victim = *ranks[nclients..]
            .iter()
            .min()
            .expect("nclients leaves a spare rank");
        let from = u64::from(rng.gen_range(2u32..=4));
        let until = from + u64::from(rng.gen_range(3u32..=5));
        plan = plan.kill_epochs(Rank(victim), from..until, HB_PERIOD_NS);
        window_end_ns = until * HB_PERIOD_NS;
    } else if rng.gen_range(0u32..4) == 0 {
        // Occasionally partition a small group away for a window.
        let group: Vec<Rank> = ranks[nclients..]
            .iter()
            .take(2)
            .map(|&r| Rank(r))
            .collect();
        if !group.is_empty() {
            let from = u64::from(rng.gen_range(2u32..=4)) * HB_PERIOD_NS;
            let until = from + u64::from(rng.gen_range(2u32..=4)) * HB_PERIOD_NS;
            window_end_ns = until;
            plan = plan.partition(group, from..until);
        }
    }

    let mut scripts = Vec::with_capacity(nclients);
    let mut max_pause_sum = 0u64;
    let fence_round = lossless && rng.gen_range(0u32..10) < 3;
    for (ci, &crank) in client_ranks.iter().enumerate().take(nclients) {
        let own = format!("chaos.c{ci}");
        let other = format!("chaos.c{}", rng.gen_range(0usize..nclients));
        let rounds: u64 = rng.gen_range(3u64..=8);
        let mut ops = Vec::new();
        let mut pause_sum = 0u64;
        if rng.gen_range(0u32..2) == 0 {
            ops.push(Op::Get { key: own.clone() }); // pre-write read: absent
        }
        for gen in 1..=rounds {
            if rng.gen_range(0u32..100) < 60 {
                let ns = rng.gen_range(scale / 2..=scale * 2);
                pause_sum += ns;
                ops.push(Op::Pause(ns));
            }
            ops.push(Op::Put { key: own.clone(), val: Value::from(gen as i64) });
            ops.push(Op::Commit);
            match rng.gen_range(0u32..4) {
                0 => ops.push(Op::Get { key: own.clone() }),
                1 => ops.push(Op::Get { key: other.clone() }),
                2 => ops.push(Op::GetVersion),
                _ => {
                    ops.push(Op::Get { key: own.clone() });
                    ops.push(Op::GetVersion);
                }
            }
        }
        if fence_round {
            ops.push(Op::Fence { name: format!("chaos.f{seed:x}"), nprocs: nclients as u64 });
            ops.push(Op::Get { key: other });
        }
        max_pause_sum = max_pause_sum.max(pause_sum);
        scripts.push((Rank(crank), ops));
    }

    // Generous virtual-time budget: all pauses, the fault windows, plus
    // worst-case injected delay for every op (each op crosses several
    // links, any of which may be held back by up to `max_delay_ns`).
    // Virtual time is free, so over-budgeting only costs heartbeats.
    let max_ops = scripts.iter().map(|(_, ops)| ops.len() as u64).max().unwrap_or(0);
    let deadline_ns = 2 * max_pause_sum
        + window_end_ns
        + 20 * HB_PERIOD_NS
        + max_ops * plan.max_delay_ns.saturating_mul(4);
    ChaosWorkload { seed, size, arity, scripts, plan, deadline_ns }
}

/// Generates a **sharded** chaos experiment: shard masters on ranks
/// `0..shards`, scripted clients on slave ranks only, keys placed
/// across shards with [`key_on_shard`], and every run ending in a
/// cross-shard fence. With `kill_master`, one shard master (never rank
/// 0, the root coordinator) is blacked out for a few heartbeat epochs
/// mid-run — commits and the fence caught in the window must complete
/// after the restart via the coordinator's retry loop, or stay pending;
/// the history checker rejects any partial release.
///
/// Run it with a `KvsConfig` whose `shards` matches, e.g.
/// `run_sim_kvs(&w, KvsConfig { shards, ..KvsConfig::default() })`.
pub fn shard_workload(seed: u64, shards: u32, time_scale_ns: u64, kill_master: bool) -> ChaosWorkload {
    let scale = time_scale_ns.max(2);
    let shards = shards.max(2);
    let mut rng = Rng::seeded(
        seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(0x9e37u64.wrapping_add(u64::from(shards))),
    );
    let size: u32 = shards + rng.gen_range(3u32..=6);
    let arity: u32 = rng.gen_range(2u32..=3);
    // Clients live strictly on slave ranks (>= shards): a master kill
    // never silences a scripted client's own broker.
    let slave_ranks: Vec<u32> = (shards..size).collect();
    let nclients = (rng.gen_range(2u32..=4) as usize).min(slave_ranks.len());
    let client_ranks: Vec<u32> = slave_ranks[..nclients].to_vec();

    // Lossless fault base (delays, sometimes duplicates): the sweep
    // isolates the blackout as the only source of message loss, so
    // stalled scripts always indict the retry machinery.
    let mut plan = FaultPlan::new(seed);
    plan = if rng.gen_range(0u32..2) == 0 {
        plan.delay(0.05, scale)
    } else {
        plan.duplicate(0.02).delay(0.03, scale)
    };
    let mut window_end_ns = 0u64;
    if kill_master {
        // Victim: a shard master, never the root coordinator.
        let victim = rng.gen_range(1u32..shards);
        let from = u64::from(rng.gen_range(2u32..=4));
        let until = from + u64::from(rng.gen_range(3u32..=5));
        plan = plan.kill_epochs(Rank(victim), from..until, HB_PERIOD_NS);
        window_end_ns = until * HB_PERIOD_NS;
    }

    let mut scripts = Vec::with_capacity(nclients);
    let mut max_pause_sum = 0u64;
    for (ci, &crank) in client_ranks.iter().enumerate() {
        // Two keys per client on distinct shards, so every commit and
        // the fence span shard boundaries.
        let sa = ci as u32 % shards;
        let sb = (ci as u32 + 1) % shards;
        let key_a = key_on_shard(&format!("chaos.s.c{ci}a"), sa, shards);
        let key_b = key_on_shard(&format!("chaos.s.c{ci}b"), sb, shards);
        let rounds: u64 = rng.gen_range(2u64..=5);
        let mut ops = Vec::new();
        let mut pause_sum = 0u64;
        if rng.gen_range(0u32..2) == 0 {
            ops.push(Op::Get { key: key_a.clone() });
        }
        for gen in 1..=rounds {
            if rng.gen_range(0u32..100) < 60 {
                let ns = rng.gen_range(scale / 2..=scale * 2);
                pause_sum += ns;
                ops.push(Op::Pause(ns));
            }
            ops.push(Op::Put { key: key_a.clone(), val: Value::from(gen as i64) });
            ops.push(Op::Put { key: key_b.clone(), val: Value::from(gen as i64) });
            ops.push(Op::Commit);
            match rng.gen_range(0u32..3) {
                0 => ops.push(Op::Get { key: key_a.clone() }),
                1 => ops.push(Op::Get { key: key_b.clone() }),
                _ => ops.push(Op::GetVersion),
            }
        }
        // The cross-shard fence every run converges on; reads after it
        // must observe every client's fenced contribution.
        ops.push(Op::Put { key: key_a.clone(), val: Value::from((rounds + 1) as i64) });
        ops.push(Op::Put { key: key_b.clone(), val: Value::from((rounds + 1) as i64) });
        ops.push(Op::Fence { name: format!("chaos.sf{seed:x}"), nprocs: nclients as u64 });
        ops.push(Op::Get { key: key_a });
        ops.push(Op::Get { key: key_b });
        max_pause_sum = max_pause_sum.max(pause_sum);
        scripts.push((Rank(crank), ops));
    }

    // Budget like `workload`, plus slack for blackout-window retries
    // (the coordinator re-sends once per heartbeat epoch).
    let max_ops = scripts.iter().map(|(_, ops)| ops.len() as u64).max().unwrap_or(0);
    let deadline_ns = 2 * max_pause_sum
        + window_end_ns
        + 40 * HB_PERIOD_NS
        + max_ops * plan.max_delay_ns.saturating_mul(4);
    ChaosWorkload { seed, size, arity, scripts, plan, deadline_ns }
}

/// Runs the workload on the discrete-event simulator with the standard
/// module set, faults wired natively into the engine.
pub fn run_sim(w: &ChaosWorkload) -> ScriptReport {
    run_sim_kvs(w, flux_kvs::KvsConfig::default())
}

/// Runs the workload like [`run_sim`] but with an explicit KVS
/// configuration on every broker — the sweep slice that pits the
/// commit-batching window and the slave lookup memo against drops,
/// duplicates, and blackout windows.
pub fn run_sim_kvs(w: &ChaosWorkload, kvs: flux_kvs::KvsConfig) -> ScriptReport {
    let transport = SimTransport {
        net: NetParams::default(),
        faults: Some(w.plan.clone()),
        deadline_ns: Some(w.deadline_ns),
        ..SimTransport::default()
    };
    transport.run_scripts(
        w.size,
        w.arity,
        &move |_| flux_modules::standard_modules_with_kvs(kvs),
        w.scripts.clone(),
    )
}

/// Maps a run's per-op results back onto consistency-checker events.
///
/// Only the recorded prefix of each script is used: a stalled or
/// timed-out op ends the walk (the live driver abandons the script, the
/// simulator records nothing further). The commit reached when the
/// record ends is conservative — every put staged since the previous
/// commit becomes [`Event::StagedOnly`].
pub fn histories(w: &ChaosWorkload, report: &ScriptReport) -> Vec<ClientHistory> {
    histories_for(&w.scripts, &report.outcomes)
}

/// The script-to-history mapping behind [`histories`], usable by any
/// driver that ran `scripts` and recorded `outcomes` in the same order
/// (the chaos suites and the flux-mc model checker share it).
pub fn histories_for(
    scripts: &[(Rank, Vec<Op>)],
    outcomes: &[ScriptOutcome],
) -> Vec<ClientHistory> {
    let mut out = Vec::with_capacity(scripts.len());
    for (si, (rank, ops)) in scripts.iter().enumerate() {
        let outcome = &outcomes[si];
        let mut events = Vec::new();
        let mut staged: Vec<(String, u64)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let recorded = i < outcome.op_err.len();
            match op {
                Op::Put { key, val } if recorded && outcome.op_err[i] == 0 => {
                    let gen = val.as_uint().unwrap_or(0);
                    staged.push((key.clone(), gen));
                }
                Op::Commit => {
                    let ok = recorded && outcome.op_err[i] == 0;
                    let reply = if ok { Some(&outcome.replies[i]) } else { None };
                    let version = reply.and_then(|r| r.get("version").and_then(Value::as_uint));
                    let frontier = reply.and_then(parse_frontier);
                    for (key, gen) in staged.drain(..) {
                        events.push(match (&frontier, version) {
                            // Sharded reply: the key committed on its
                            // shard at that shard's frontier version.
                            (Some((shards, fmap)), _) => {
                                match shard_of_key(&key, *shards)
                                    .ok()
                                    .and_then(|s| fmap.get(&s).map(|v| (s, *v)))
                                {
                                    Some((shard, v)) => Event::CommittedSharded {
                                        key,
                                        gen,
                                        shard,
                                        version: v,
                                    },
                                    None => Event::StagedOnly { key, gen },
                                }
                            }
                            (None, Some(v)) => Event::Committed { key, gen, version: v },
                            (None, None) => Event::StagedOnly { key, gen },
                        });
                    }
                    if let Some((_, fmap)) = &frontier {
                        for (s, v) in fmap {
                            events.push(Event::ShardVersion { shard: *s, v: *v });
                        }
                    }
                }
                Op::Get { key } => {
                    if !recorded {
                        break;
                    }
                    match outcome.op_err[i] {
                        0 => {
                            let gen = outcome.replies[i].get("v").and_then(Value::as_uint);
                            events.push(Event::Read { key: key.clone(), gen });
                        }
                        e if e == errnum::ENOENT => {
                            events.push(Event::Read { key: key.clone(), gen: None });
                        }
                        _ => break,
                    }
                }
                Op::GetVersion if recorded && outcome.op_err[i] == 0 => {
                    if let Some(v) = outcome.replies[i].get("version").and_then(Value::as_uint) {
                        events.push(Event::Version { v });
                    }
                }
                Op::Fence { name, .. } => {
                    // A successful fence commits the caller's staged
                    // write-back set (its contribution applied at the
                    // master before the completion event); an unanswered
                    // fence leaves its fate unknown. A rejected fence
                    // (EINVAL) never consumed the set — it stays staged
                    // for a later commit.
                    if !recorded {
                        for (key, gen) in staged.drain(..) {
                            events.push(Event::StagedOnly { key, gen });
                        }
                    } else if outcome.op_err[i] == 0 {
                        let reply = &outcome.replies[i];
                        if let Some((shards, fmap)) = parse_frontier(reply) {
                            // Cross-shard release: each contribution is
                            // fenced on its owning shard, and the reply's
                            // frontier must agree across all clients.
                            for (key, gen) in staged.drain(..) {
                                let shard = shard_of_key(&key, shards).unwrap_or(0);
                                events.push(Event::Fenced {
                                    name: name.clone(),
                                    key,
                                    gen,
                                    shard,
                                });
                            }
                            events.push(Event::FenceDone {
                                name: name.clone(),
                                frontier: fmap.into_iter().collect(),
                            });
                        } else if let Some(v) =
                            reply.get("version").and_then(Value::as_uint)
                        {
                            // Single-master release: everything fenced on
                            // shard 0 at one version.
                            for (key, gen) in staged.drain(..) {
                                events.push(Event::Fenced {
                                    name: name.clone(),
                                    key,
                                    gen,
                                    shard: 0,
                                });
                            }
                            events.push(Event::FenceDone {
                                name: name.clone(),
                                frontier: vec![(0, v)],
                            });
                        } else {
                            for (key, gen) in staged.drain(..) {
                                events.push(Event::StagedOnly { key, gen });
                            }
                        }
                    }
                }
                _ => {}
            }
            if !recorded {
                break;
            }
        }
        // An unanswered tail commit was drained above only if the Commit
        // op itself was reached in the loop; puts still staged when the
        // record ends have unknown fate only if a commit follows in the
        // script — but an unreached commit was never sent, so those
        // writes were never published and are rightly omitted.
        out.push(ClientHistory { client: format!("r{}c{si}", rank.0), events });
    }
    out
}

/// Decodes a sharded commit/fence reply's per-shard frontier:
/// `(total shard count, shard → version)`. `None` for unsharded
/// replies (no `frontier` field).
fn parse_frontier(reply: &Value) -> Option<(u32, BTreeMap<u32, u64>)> {
    let entries = reply.get("frontier").and_then(Value::as_array)?;
    let shards = reply.get("shards").and_then(Value::as_uint)? as u32;
    let mut fmap = BTreeMap::new();
    for e in entries {
        fmap.insert(
            e.get("shard").and_then(Value::as_uint).unwrap_or(0) as u32,
            e.get("version").and_then(Value::as_uint).unwrap_or(0),
        );
    }
    Some((shards, fmap))
}

/// Convenience: run the mapping and the checker in one step.
pub fn check_run(w: &ChaosWorkload, report: &ScriptReport) -> Vec<String> {
    flux_kvs::history::check(&histories(w, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ScriptOutcome;

    #[test]
    fn workload_is_deterministic() {
        let a = workload(42, 1_000_000, true);
        let b = workload(42, 1_000_000, true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn seeds_vary_the_experiment() {
        let shapes: Vec<String> = (0..8u64)
            .map(|s| {
                let w = workload(s, 1_000_000, false);
                format!("{}/{}/{}", w.size, w.arity, w.scripts.len())
            })
            .collect();
        let first = &shapes[0];
        assert!(shapes.iter().any(|s| s != first), "shapes: {shapes:?}");
    }

    #[test]
    fn kill_workloads_never_kill_a_client_rank() {
        for seed in 0..32u64 {
            let w = workload(seed, 1_000_000, true);
            for b in &w.plan.blackouts {
                assert!(!b.rank.is_root(), "seed {seed} kills root");
                assert!(
                    w.scripts.iter().all(|(r, _)| *r != b.rank),
                    "seed {seed} kills client rank {}",
                    b.rank.0
                );
            }
            assert!(!w.plan.blackouts.is_empty(), "seed {seed} has no kill");
        }
    }

    #[test]
    fn shard_workload_is_deterministic() {
        let a = shard_workload(42, 4, 1_000_000, true);
        let b = shard_workload(42, 4, 1_000_000, true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn shard_workload_kills_only_non_root_masters() {
        for seed in 0..32u64 {
            let w = shard_workload(seed, 4, 1_000_000, true);
            assert!(!w.plan.blackouts.is_empty(), "seed {seed} has no kill");
            for b in &w.plan.blackouts {
                assert!(!b.rank.is_root(), "seed {seed} kills the root coordinator");
                assert!(b.rank.0 < 4, "seed {seed} kills non-master rank {}", b.rank.0);
                assert!(
                    w.scripts.iter().all(|(r, _)| *r != b.rank),
                    "seed {seed} kills client rank {}",
                    b.rank.0
                );
            }
            // Every script spans shards and ends in fence + reads.
            for (rank, ops) in &w.scripts {
                assert!(rank.0 >= 4, "client on a master rank");
                assert!(ops.iter().any(|o| matches!(o, Op::Fence { .. })));
            }
        }
    }

    #[test]
    fn histories_map_frontier_replies() {
        let shards = 4u32;
        let key_a = key_on_shard("fm.a", 1, shards);
        let key_b = key_on_shard("fm.b", 2, shards);
        let w = ChaosWorkload {
            seed: 0,
            size: 6,
            arity: 2,
            scripts: vec![(
                Rank(4),
                vec![
                    Op::Put { key: key_a.clone(), val: Value::from(1i64) },
                    Op::Put { key: key_b.clone(), val: Value::from(1i64) },
                    Op::Commit,
                    Op::Put { key: key_a.clone(), val: Value::from(2i64) },
                    Op::Fence { name: "fm.f".into(), nprocs: 1 },
                ],
            )],
            plan: FaultPlan::new(0),
            deadline_ns: 0,
        };
        let frontier = |v1: i64, v2: i64| {
            Value::from_pairs([
                ("shards", Value::from(shards as i64)),
                (
                    "frontier",
                    Value::Array(vec![
                        Value::from_pairs([
                            ("shard", Value::from(1i64)),
                            ("version", Value::from(v1)),
                            ("root", Value::from("aa")),
                        ]),
                        Value::from_pairs([
                            ("shard", Value::from(2i64)),
                            ("version", Value::from(v2)),
                            ("root", Value::from("bb")),
                        ]),
                    ]),
                ),
            ])
        };
        let report = ScriptReport {
            outcomes: vec![ScriptOutcome {
                op_done_ns: vec![1, 2, 3, 4, 5],
                op_err: vec![0, 0, 0, 0, 0],
                replies: vec![
                    Value::Null,
                    Value::Null,
                    frontier(3, 5),
                    Value::Null,
                    frontier(4, 5),
                ],
                finished: true,
            }],
            ..ScriptReport::default()
        };
        let h = histories(&w, &report);
        assert_eq!(
            h[0].events,
            vec![
                Event::CommittedSharded { key: key_a.clone(), gen: 1, shard: 1, version: 3 },
                Event::CommittedSharded { key: key_b.clone(), gen: 1, shard: 2, version: 5 },
                Event::ShardVersion { shard: 1, v: 3 },
                Event::ShardVersion { shard: 2, v: 5 },
                Event::Fenced { name: "fm.f".into(), key: key_a, gen: 2, shard: 1 },
                Event::FenceDone { name: "fm.f".into(), frontier: vec![(1, 4), (2, 5)] },
            ]
        );
        assert!(check_run(&w, &report).is_empty());
    }

    #[test]
    fn histories_map_commits_and_reads() {
        let w = ChaosWorkload {
            seed: 0,
            size: 3,
            arity: 2,
            scripts: vec![(
                Rank(1),
                vec![
                    Op::Put { key: "k".into(), val: Value::from(1i64) },
                    Op::Commit,
                    Op::Get { key: "k".into() },
                    Op::Put { key: "k".into(), val: Value::from(2i64) },
                    Op::Commit, // unanswered → StagedOnly
                ],
            )],
            plan: FaultPlan::new(0),
            deadline_ns: 0,
        };
        let report = ScriptReport {
            outcomes: vec![ScriptOutcome {
                op_done_ns: vec![1, 2, 3, 4, 5],
                op_err: vec![0, 0, 0, 0, errnum::ETIMEDOUT],
                replies: vec![
                    Value::Null,
                    Value::from_pairs([("version", Value::from(7i64))]),
                    Value::from_pairs([("v", Value::from(1i64))]),
                    Value::Null,
                    Value::Null,
                ],
                finished: false,
            }],
            ..ScriptReport::default()
        };
        let h = histories(&w, &report);
        assert_eq!(
            h[0].events,
            vec![
                Event::Committed { key: "k".into(), gen: 1, version: 7 },
                Event::Read { key: "k".into(), gen: Some(1) },
                Event::StagedOnly { key: "k".into(), gen: 2 },
            ]
        );
        assert!(check_run(&w, &report).is_empty());
    }
}
