//! Seeded chaos workloads: random KVS traffic under random fault plans.
//!
//! One `u64` seed reproducibly determines a whole experiment — session
//! size, client placement, the op script each client runs, and the
//! [`FaultPlan`] applied to the links. The chaos test suites sweep seeds
//! and check the resulting observations with
//! [`flux_kvs::history::check`]; a failing seed is a complete repro
//! recipe on its own.
//!
//! Fault-style notes (why the generator is shaped the way it is):
//!
//! * **Drops and blackouts** stall requests (there is no retransmit
//!   layer), so scripts may record only a prefix of their ops — the
//!   history mapping treats an unanswered commit as
//!   [`Event::StagedOnly`] (it may or may not have applied).
//! * **Duplicates** are safe end-to-end: the broker event plane dedups
//!   by sequence number, `kvs.push` and fence batches dedup by id, and
//!   script clients ignore mismatched response tags.
//! * **Fences** require every participant to arrive, so the generator
//!   only emits fence rounds for loss-free styles; a single dropped
//!   contribution would otherwise stall all clients.

use crate::faults::FaultPlan;
use crate::script::Op;
use crate::transport::{ScriptOutcome, ScriptReport, ScriptTransport, SimTransport};
use flux_core::rng::Rng;
use flux_kvs::history::{ClientHistory, Event};
use flux_sim::NetParams;
use flux_value::Value;
use flux_wire::{errnum, Rank};

/// The heartbeat period the chaos generator assumes when converting
/// epoch windows to nanoseconds (`BrokerConfig` default).
pub const HB_PERIOD_NS: u64 = 100_000_000;

/// A fully-determined chaos experiment.
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// The seed that produced everything below.
    pub seed: u64,
    /// Session size in brokers.
    pub size: u32,
    /// Tree arity.
    pub arity: u32,
    /// Per-client op scripts, `(rank, ops)`.
    pub scripts: Vec<(Rank, Vec<Op>)>,
    /// The fault plan to apply to the session links.
    pub plan: FaultPlan,
    /// Virtual-time deadline for simulator runs (heartbeats never let
    /// the event heap drain on its own).
    pub deadline_ns: u64,
}

/// Generates the experiment for `seed`.
///
/// `time_scale_ns` sets the magnitude of pauses and injected delays
/// (use ~100ms on the simulator where time is free, a few ms on live
/// transports). `with_kill` additionally blacks out one non-client,
/// non-root broker for a few heartbeat epochs mid-run.
pub fn workload(seed: u64, time_scale_ns: u64, with_kill: bool) -> ChaosWorkload {
    let scale = time_scale_ns.max(2);
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xc4a5));
    let size: u32 = rng.gen_range(5u32..=12);
    let arity: u32 = rng.gen_range(2u32..=3);
    // Leave root (the KVS master) and at least one other rank client-free
    // so a kill never silences a scripted client's own broker.
    let nclients = (rng.gen_range(3u32..=6) as usize).min(size as usize - 2);
    let mut ranks: Vec<u32> = (1..size).collect();
    for i in (1..ranks.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        ranks.swap(i, j);
    }
    let client_ranks: Vec<u32> = ranks[..nclients].to_vec();

    // Fault style first: the workload shape depends on it (fences only
    // when nothing is dropped).
    let style: u32 = rng.gen_range(0u32..4);
    let mut plan = FaultPlan::new(seed);
    let lossless = match style {
        0 => {
            plan = plan.delay(0.02, scale);
            true
        }
        1 => {
            plan = plan.drop(f64::from(rng.gen_range(1u32..=20)) / 1000.0);
            false
        }
        2 => {
            plan = plan.duplicate(0.02).delay(0.05, scale * 2);
            true
        }
        _ => {
            plan = plan.drop(0.005).duplicate(0.01).delay(0.02, scale);
            false
        }
    };
    let mut window_end_ns = 0u64;
    if with_kill {
        // flux-lint: allow(panic) — test-harness scenario generator; the
        // caller guarantees size > nclients, and a bad plan should fail
        // the chaos suite loudly.
        let victim = *ranks[nclients..]
            .iter()
            .min()
            .expect("nclients leaves a spare rank");
        let from = u64::from(rng.gen_range(2u32..=4));
        let until = from + u64::from(rng.gen_range(3u32..=5));
        plan = plan.kill_epochs(Rank(victim), from..until, HB_PERIOD_NS);
        window_end_ns = until * HB_PERIOD_NS;
    } else if rng.gen_range(0u32..4) == 0 {
        // Occasionally partition a small group away for a window.
        let group: Vec<Rank> = ranks[nclients..]
            .iter()
            .take(2)
            .map(|&r| Rank(r))
            .collect();
        if !group.is_empty() {
            let from = u64::from(rng.gen_range(2u32..=4)) * HB_PERIOD_NS;
            let until = from + u64::from(rng.gen_range(2u32..=4)) * HB_PERIOD_NS;
            window_end_ns = until;
            plan = plan.partition(group, from..until);
        }
    }

    let mut scripts = Vec::with_capacity(nclients);
    let mut max_pause_sum = 0u64;
    let fence_round = lossless && rng.gen_range(0u32..10) < 3;
    for (ci, &crank) in client_ranks.iter().enumerate().take(nclients) {
        let own = format!("chaos.c{ci}");
        let other = format!("chaos.c{}", rng.gen_range(0usize..nclients));
        let rounds: u64 = rng.gen_range(3u64..=8);
        let mut ops = Vec::new();
        let mut pause_sum = 0u64;
        if rng.gen_range(0u32..2) == 0 {
            ops.push(Op::Get { key: own.clone() }); // pre-write read: absent
        }
        for gen in 1..=rounds {
            if rng.gen_range(0u32..100) < 60 {
                let ns = rng.gen_range(scale / 2..=scale * 2);
                pause_sum += ns;
                ops.push(Op::Pause(ns));
            }
            ops.push(Op::Put { key: own.clone(), val: Value::from(gen as i64) });
            ops.push(Op::Commit);
            match rng.gen_range(0u32..4) {
                0 => ops.push(Op::Get { key: own.clone() }),
                1 => ops.push(Op::Get { key: other.clone() }),
                2 => ops.push(Op::GetVersion),
                _ => {
                    ops.push(Op::Get { key: own.clone() });
                    ops.push(Op::GetVersion);
                }
            }
        }
        if fence_round {
            ops.push(Op::Fence { name: format!("chaos.f{seed:x}"), nprocs: nclients as u64 });
            ops.push(Op::Get { key: other });
        }
        max_pause_sum = max_pause_sum.max(pause_sum);
        scripts.push((Rank(crank), ops));
    }

    // Generous virtual-time budget: all pauses, the fault windows, plus
    // worst-case injected delay for every op (each op crosses several
    // links, any of which may be held back by up to `max_delay_ns`).
    // Virtual time is free, so over-budgeting only costs heartbeats.
    let max_ops = scripts.iter().map(|(_, ops)| ops.len() as u64).max().unwrap_or(0);
    let deadline_ns = 2 * max_pause_sum
        + window_end_ns
        + 20 * HB_PERIOD_NS
        + max_ops * plan.max_delay_ns.saturating_mul(4);
    ChaosWorkload { seed, size, arity, scripts, plan, deadline_ns }
}

/// Runs the workload on the discrete-event simulator with the standard
/// module set, faults wired natively into the engine.
pub fn run_sim(w: &ChaosWorkload) -> ScriptReport {
    run_sim_kvs(w, flux_kvs::KvsConfig::default())
}

/// Runs the workload like [`run_sim`] but with an explicit KVS
/// configuration on every broker — the sweep slice that pits the
/// commit-batching window and the slave lookup memo against drops,
/// duplicates, and blackout windows.
pub fn run_sim_kvs(w: &ChaosWorkload, kvs: flux_kvs::KvsConfig) -> ScriptReport {
    let transport = SimTransport {
        net: NetParams::default(),
        faults: Some(w.plan.clone()),
        deadline_ns: Some(w.deadline_ns),
    };
    transport.run_scripts(
        w.size,
        w.arity,
        &move |_| flux_modules::standard_modules_with_kvs(kvs),
        w.scripts.clone(),
    )
}

/// Maps a run's per-op results back onto consistency-checker events.
///
/// Only the recorded prefix of each script is used: a stalled or
/// timed-out op ends the walk (the live driver abandons the script, the
/// simulator records nothing further). The commit reached when the
/// record ends is conservative — every put staged since the previous
/// commit becomes [`Event::StagedOnly`].
pub fn histories(w: &ChaosWorkload, report: &ScriptReport) -> Vec<ClientHistory> {
    histories_for(&w.scripts, &report.outcomes)
}

/// The script-to-history mapping behind [`histories`], usable by any
/// driver that ran `scripts` and recorded `outcomes` in the same order
/// (the chaos suites and the flux-mc model checker share it).
pub fn histories_for(
    scripts: &[(Rank, Vec<Op>)],
    outcomes: &[ScriptOutcome],
) -> Vec<ClientHistory> {
    let mut out = Vec::with_capacity(scripts.len());
    for (si, (rank, ops)) in scripts.iter().enumerate() {
        let outcome = &outcomes[si];
        let mut events = Vec::new();
        let mut staged: Vec<(String, u64)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let recorded = i < outcome.op_err.len();
            match op {
                Op::Put { key, val } if recorded && outcome.op_err[i] == 0 => {
                    let gen = val.as_uint().unwrap_or(0);
                    staged.push((key.clone(), gen));
                }
                Op::Commit => {
                    let ok = recorded && outcome.op_err[i] == 0;
                    let version = if ok {
                        outcome.replies[i].get("version").and_then(Value::as_uint)
                    } else {
                        None
                    };
                    for (key, gen) in staged.drain(..) {
                        events.push(match version {
                            Some(v) => Event::Committed { key, gen, version: v },
                            None => Event::StagedOnly { key, gen },
                        });
                    }
                }
                Op::Get { key } => {
                    if !recorded {
                        break;
                    }
                    match outcome.op_err[i] {
                        0 => {
                            let gen = outcome.replies[i].get("v").and_then(Value::as_uint);
                            events.push(Event::Read { key: key.clone(), gen });
                        }
                        e if e == errnum::ENOENT => {
                            events.push(Event::Read { key: key.clone(), gen: None });
                        }
                        _ => break,
                    }
                }
                Op::GetVersion if recorded && outcome.op_err[i] == 0 => {
                    if let Some(v) = outcome.replies[i].get("version").and_then(Value::as_uint) {
                        events.push(Event::Version { v });
                    }
                }
                Op::Fence { .. } => {
                    // A successful fence commits the caller's staged
                    // write-back set (its contribution applied at the
                    // master before the completion event); an unanswered
                    // fence leaves its fate unknown. A rejected fence
                    // (EINVAL) never consumed the set — it stays staged
                    // for a later commit.
                    if !recorded {
                        for (key, gen) in staged.drain(..) {
                            events.push(Event::StagedOnly { key, gen });
                        }
                    } else if outcome.op_err[i] == 0 {
                        let version =
                            outcome.replies[i].get("version").and_then(Value::as_uint);
                        for (key, gen) in staged.drain(..) {
                            events.push(match version {
                                Some(v) => Event::Committed { key, gen, version: v },
                                None => Event::StagedOnly { key, gen },
                            });
                        }
                        if let Some(v) = version {
                            events.push(Event::Version { v });
                        }
                    }
                }
                _ => {}
            }
            if !recorded {
                break;
            }
        }
        // An unanswered tail commit was drained above only if the Commit
        // op itself was reached in the loop; puts still staged when the
        // record ends have unknown fate only if a commit follows in the
        // script — but an unreached commit was never sent, so those
        // writes were never published and are rightly omitted.
        out.push(ClientHistory { client: format!("r{}c{si}", rank.0), events });
    }
    out
}

/// Convenience: run the mapping and the checker in one step.
pub fn check_run(w: &ChaosWorkload, report: &ScriptReport) -> Vec<String> {
    flux_kvs::history::check(&histories(w, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ScriptOutcome;

    #[test]
    fn workload_is_deterministic() {
        let a = workload(42, 1_000_000, true);
        let b = workload(42, 1_000_000, true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn seeds_vary_the_experiment() {
        let shapes: Vec<String> = (0..8u64)
            .map(|s| {
                let w = workload(s, 1_000_000, false);
                format!("{}/{}/{}", w.size, w.arity, w.scripts.len())
            })
            .collect();
        let first = &shapes[0];
        assert!(shapes.iter().any(|s| s != first), "shapes: {shapes:?}");
    }

    #[test]
    fn kill_workloads_never_kill_a_client_rank() {
        for seed in 0..32u64 {
            let w = workload(seed, 1_000_000, true);
            for b in &w.plan.blackouts {
                assert!(!b.rank.is_root(), "seed {seed} kills root");
                assert!(
                    w.scripts.iter().all(|(r, _)| *r != b.rank),
                    "seed {seed} kills client rank {}",
                    b.rank.0
                );
            }
            assert!(!w.plan.blackouts.is_empty(), "seed {seed} has no kill");
        }
    }

    #[test]
    fn histories_map_commits_and_reads() {
        let w = ChaosWorkload {
            seed: 0,
            size: 3,
            arity: 2,
            scripts: vec![(
                Rank(1),
                vec![
                    Op::Put { key: "k".into(), val: Value::from(1i64) },
                    Op::Commit,
                    Op::Get { key: "k".into() },
                    Op::Put { key: "k".into(), val: Value::from(2i64) },
                    Op::Commit, // unanswered → StagedOnly
                ],
            )],
            plan: FaultPlan::new(0),
            deadline_ns: 0,
        };
        let report = ScriptReport {
            outcomes: vec![ScriptOutcome {
                op_done_ns: vec![1, 2, 3, 4, 5],
                op_err: vec![0, 0, 0, 0, errnum::ETIMEDOUT],
                replies: vec![
                    Value::Null,
                    Value::from_pairs([("version", Value::from(7i64))]),
                    Value::from_pairs([("v", Value::from(1i64))]),
                    Value::Null,
                    Value::Null,
                ],
                finished: false,
            }],
            ..ScriptReport::default()
        };
        let h = histories(&w, &report);
        assert_eq!(
            h[0].events,
            vec![
                Event::Committed { key: "k".into(), gen: 1, version: 7 },
                Event::Read { key: "k".into(), gen: Some(1) },
                Event::StagedOnly { key: "k".into(), gen: 2 },
            ]
        );
        assert!(check_run(&w, &report).is_empty());
    }
}
