//! # flux-rt
//!
//! Runtimes that host the sans-io CMB brokers:
//!
//! * [`sim::SimSession`] — a comms session on the deterministic
//!   discrete-event simulator (`flux-sim`). One actor per broker, one
//!   actor per attached client process, the paper's cost model on every
//!   link. This is where paper-scale runs (512 nodes × 16 processes)
//!   happen, measured in virtual time.
//! * [`threads::ThreadSession`] — the same brokers on real OS threads
//!   connected by std mpsc channels, measured in wall-clock time. Used
//!   by integration tests and small live demos; it demonstrates that the
//!   protocol stack is runtime-agnostic (nothing in broker/module/KVS
//!   code knows which runtime it is on).
//! * [`tcp::TcpSession`] — the brokers wired over real loopback TCP
//!   sockets carrying length-prefixed `flux-wire` frames. One poll-based
//!   reactor thread per broker drives every socket nonblocking (the
//!   `reactor` module behind [`tcp`]): pooled broker→broker links,
//!   pipelined socket clients, jittered nonblocking connect retry. The
//!   closest analogue of the prototype's ØMQ TCP overlay.
//!
//! The [`transport`] module abstracts over them: [`transport::Transport`]
//! is the object-safe factory for live sessions (pick `threads` or `tcp`
//! at runtime), and [`transport::ScriptTransport`] runs scripted client
//! workloads on any of the three runtimes, including the simulator.
//!
//! All runtimes load arbitrary [`flux_broker::CommsModule`] sets, attach
//! any number of clients per broker, and reconstruct message planes from
//! message shape (events → event plane, rank-addressed → ring, otherwise
//! tree), so the wire behaviour matches the paper's three-plane wire-up.


//! Fault injection ([`faults::FaultPlan`]) rides below all of this: the
//! simulator applies a plan natively in virtual time, and the live
//! runtimes apply the same plan per broker host, so one seeded fault
//! schedule drives chaos tests on every backend (see [`chaos`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod chaos;
pub mod conformance;
pub mod faults;
pub(crate) mod live;
pub(crate) mod reactor;
pub mod script;
pub mod sim;
pub mod tcp;
pub mod threads;
pub mod transport;

pub use faults::FaultPlan;
pub use live::LiveClient;
