//! # flux-rt
//!
//! Runtimes that host the sans-io CMB brokers:
//!
//! * [`sim::SimSession`] — a comms session on the deterministic
//!   discrete-event simulator (`flux-sim`). One actor per broker, one
//!   actor per attached client process, the paper's cost model on every
//!   link. This is where paper-scale runs (512 nodes × 16 processes)
//!   happen, measured in virtual time.
//! * [`threads::ThreadSession`] — the same brokers on real OS threads
//!   connected by crossbeam channels, measured in wall-clock time. Used
//!   by integration tests and small live demos; it demonstrates that the
//!   protocol stack is runtime-agnostic (nothing in broker/module/KVS
//!   code knows which runtime it is on).
//!
//! Both runtimes load arbitrary [`flux_broker::CommsModule`] sets, attach
//! any number of clients per broker, and reconstruct message planes from
//! message shape (events → event plane, rank-addressed → ring, otherwise
//! tree), so the wire behaviour matches the paper's three-plane wire-up.


#![warn(missing_docs)]
pub mod script;
pub mod sim;
pub mod threads;
