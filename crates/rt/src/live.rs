//! Machinery shared by the live (wall-clock) runtimes.
//!
//! [`threads::ThreadSession`](crate::threads::ThreadSession) and
//! [`tcp::TcpSession`](crate::tcp::TcpSession) differ only in how broker
//! output reaches a peer broker — an in-process channel vs. a loopback
//! TCP link. Everything else lives here: the per-broker event loop with
//! its timer heap, the client attachment model (clients are in-process
//! and talk to their local broker over a channel, the moral equivalent
//! of the prototype's IPC sockets), and the event type flowing into a
//! broker thread.

use crate::faults::LinkFaults;
use flux_broker::{Broker, ClientId, Input, Output};
use flux_wire::{Message, MsgType, Plane, Rank};
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// What flows into a broker thread.
pub(crate) enum Event {
    /// A message from a peer broker.
    FromBroker {
        /// Sending rank.
        from: Rank,
        /// The message.
        msg: Message,
    },
    /// A request from a locally attached client.
    FromClient {
        /// Broker-local client id.
        client: ClientId,
        /// The request.
        msg: Message,
    },
    /// Stop the broker thread.
    Shutdown,
}

/// Infers the plane a message travelled on from its shape: events use
/// the event plane, rank-addressed messages the ring, the rest the tree.
pub(crate) fn plane_of(msg: &Message) -> Plane {
    match msg.header.msg_type {
        MsgType::Event => Plane::Event,
        _ if msg.header.dst.is_some() => Plane::Ring,
        _ => Plane::Tree,
    }
}

/// A client connection to a broker in a live session.
///
/// Clients are in-process on every live transport: they exchange
/// messages with their local broker over a channel (the prototype's
/// local IPC socket), while broker↔broker traffic rides the transport's
/// own links.
pub struct LiveClient {
    /// The rank this client is attached to.
    pub rank: Rank,
    /// The broker-local client id.
    pub client_id: ClientId,
    pub(crate) tx: Sender<Event>,
    pub(crate) rx: Receiver<Message>,
}

impl LiveClient {
    /// Sends a request to the local broker.
    pub fn send(&self, msg: Message) {
        let _ = self.tx.send(Event::FromClient { client: self.client_id, msg });
    }

    /// Receives the next message (response or subscribed event), waiting
    /// up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }
}

/// How a broker host delivers a message to a peer broker. The one point
/// where live transports differ.
pub(crate) trait PeerSender {
    /// Delivers `msg` to the broker at `to`. `plane` is the plane the
    /// message travels on: transports that pool several links per peer
    /// (the reactor) pin the event plane to one link to preserve its
    /// per-link FIFO contract.
    fn send_to(&mut self, to: Rank, plane: Plane, msg: Message);

    /// Delivers a broker→client message to a transport-owned client
    /// connection (e.g. a reactor socket client). Returns `false` if the
    /// transport does not own `client`; channel-attached clients are
    /// handled by the host itself before this hook is consulted.
    fn deliver_client(&mut self, _client: ClientId, _msg: Message) -> bool {
        false
    }

    /// Called once when the host's event loop exits, before the thread
    /// terminates (e.g. to flush or close links).
    fn close(&mut self) {}
}

/// In-process peer delivery over channels (the threads transport).
pub(crate) struct ChannelPeers {
    pub(crate) rank: Rank,
    pub(crate) peers: Vec<Sender<Event>>,
}

impl PeerSender for ChannelPeers {
    fn send_to(&mut self, to: Rank, _plane: Plane, msg: Message) {
        let _ = self.peers[to.index()].send(Event::FromBroker { from: self.rank, msg });
    }
}

/// A fault-delayed outbound message awaiting release. Ordered by
/// `(at, seq)` so the host's `BinaryHeap` acts as a min-heap with FIFO
/// tie-breaking.
pub(crate) struct Delayed {
    at: Instant,
    seq: u64,
    to: Rank,
    plane: Plane,
    msg: Message,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the earliest release time is the heap maximum.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The per-thread broker event loop: services due timers from a local
/// heap, otherwise sleeps in `recv_timeout` until traffic arrives, so a
/// broker thread is quiet when the session is quiet (the low-noise
/// design goal).
///
/// With `faults` set, every outbound broker message consults the link's
/// fault stream (drop/dup/delay), inbound traffic is discarded while
/// this rank is inside a blackout window, and delayed copies sit in
/// `delayed` until their release time.
pub(crate) struct BrokerHost<P: PeerSender> {
    pub(crate) broker: Broker,
    pub(crate) rx: Receiver<Event>,
    pub(crate) peers: P,
    pub(crate) clients: Vec<Sender<Message>>,
    pub(crate) epoch: Instant,
    pub(crate) timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    pub(crate) faults: Option<LinkFaults>,
    pub(crate) delayed: BinaryHeap<Delayed>,
    pub(crate) delay_seq: u64,
}

impl<P: PeerSender> BrokerHost<P> {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn silenced(&self, now_ns: u64) -> bool {
        self.faults.as_ref().is_some_and(|f| f.silenced(now_ns))
    }

    fn send_to_broker(&mut self, now_ns: u64, plane: Plane, to: Rank, msg: Message) {
        let Some(f) = &mut self.faults else {
            self.peers.send_to(to, plane, msg);
            return;
        };
        // The event plane needs per-link FIFO (its seq dedup drops
        // reordered events), so delays are suppressed there.
        let fate = if matches!(plane, Plane::Event) {
            f.fate_ordered(now_ns, to)
        } else {
            f.fate(now_ns, to)
        };
        for &extra in &fate.copies {
            if extra == 0 {
                self.peers.send_to(to, plane, msg.clone());
            } else {
                self.delay_seq += 1;
                self.delayed.push(Delayed {
                    at: Instant::now() + Duration::from_nanos(extra),
                    seq: self.delay_seq,
                    to,
                    plane,
                    msg: msg.clone(),
                });
            }
        }
    }

    fn absorb(&mut self, outs: Vec<Output>) {
        let now_ns = self.now_ns();
        for out in outs {
            match out {
                Output::ToBroker { plane, to, msg } => {
                    self.send_to_broker(now_ns, plane, to, msg)
                }
                Output::ToClient { client, msg } => {
                    // A blacked-out broker cannot answer its clients.
                    if self.silenced(now_ns) {
                        continue;
                    }
                    if let Some(tx) = self.clients.get(client as usize) {
                        let _ = tx.send(msg);
                    } else {
                        // Not channel-attached: a transport-owned client
                        // connection (reactor socket client).
                        self.peers.deliver_client(client, msg);
                    }
                }
                Output::SetTimer { delay_ns, token } => {
                    let at = Instant::now() + Duration::from_nanos(delay_ns);
                    self.timers.push(std::cmp::Reverse((at, token)));
                }
            }
        }
    }

    /// Runs `Broker::start` and routes its outputs. Call exactly once,
    /// before the first loop iteration.
    pub(crate) fn start_broker(&mut self) {
        let outs = self.broker.start(self.now_ns());
        self.absorb(outs);
    }

    /// Fires every due timer. (Timers run even during a blackout —
    /// `absorb` suppresses their outputs — so periodic re-arm chains
    /// survive a simulated crash/restart.)
    pub(crate) fn service_timers(&mut self) {
        let now = Instant::now();
        while let Some(&std::cmp::Reverse((at, token))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            let now_ns = self.now_ns();
            let outs = self.broker.handle(now_ns, Input::Timer { token });
            self.absorb(outs);
        }
    }

    /// Releases fault-delayed messages that have come due.
    pub(crate) fn release_delayed(&mut self) {
        while let Some(d) = self.delayed.peek() {
            if d.at > Instant::now() {
                break;
            }
            let Some(d) = self.delayed.pop() else { break };
            self.peers.send_to(d.to, d.plane, d.msg);
        }
    }

    /// When the host next has scheduled work (timer fire or delayed
    /// release), or `None` if it can sleep until traffic arrives.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let timer = self.timers.peek().map(|&std::cmp::Reverse((at, _))| at);
        let release = self.delayed.peek().map(|d| d.at);
        match (timer, release) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Feeds one event into the broker; returns `false` on `Shutdown`.
    pub(crate) fn handle_event(&mut self, ev: Event) -> bool {
        match ev {
            Event::Shutdown => return false,
            Event::FromBroker { from, msg } => {
                let now_ns = self.now_ns();
                if self.silenced(now_ns) {
                    return true; // crashed: inbound traffic is lost
                }
                let input = Input::FromBroker { plane: plane_of(&msg), from, msg };
                let outs = self.broker.handle(now_ns, input);
                self.absorb(outs);
            }
            Event::FromClient { client, msg } => {
                let now_ns = self.now_ns();
                if self.silenced(now_ns) {
                    return true; // crashed: local clients get no service
                }
                let outs = self.broker.handle(now_ns, Input::FromClient { client, msg });
                self.absorb(outs);
            }
        }
        true
    }

    /// The channel-only event loop (threads transport): services due
    /// timers and releases, otherwise sleeps in `recv_timeout` until
    /// traffic arrives. The reactor drives the same steps from its own
    /// loop (see [`crate::reactor`]), interleaving socket readiness.
    pub(crate) fn run(mut self) {
        self.start_broker();
        loop {
            self.service_timers();
            self.release_delayed();
            // Sleep until traffic, the next timer, or the next release.
            let timeout = self
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(250));
            match self.rx.recv_timeout(timeout) {
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => continue,
                Ok(ev) => {
                    if !self.handle_event(ev) {
                        break;
                    }
                }
            }
        }
        self.peers.close();
    }
}
