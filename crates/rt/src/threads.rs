//! Comms sessions on real OS threads.
//!
//! One thread per broker; std mpsc channels stand in for the prototype's
//! ØMQ TCP/IPC sockets (same guarantees: reliable, per-link FIFO).
//! The per-broker event loop (timers, client delivery) is shared with
//! the TCP transport — see [`crate::live`].

use crate::faults::FaultPlan;
use crate::live::{BrokerHost, ChannelPeers, Event, LiveClient};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule};
use flux_wire::{Message, Rank};
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

/// A client connection to a broker in a [`ThreadSession`].
pub type ThreadClient = LiveClient;

/// A comms session on OS threads: call [`ThreadSession::builder`], attach
/// clients, then [`ThreadSessionBuilder::start`].
pub struct ThreadSession {
    size: u32,
    senders: Vec<Sender<Event>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Builder collecting brokers and client attachments before the threads
/// launch.
pub struct ThreadSessionBuilder {
    configs: Vec<BrokerConfig>,
    modules: Vec<Vec<Box<dyn CommsModule>>>,
    senders: Vec<Sender<Event>>,
    receivers: Vec<Option<Receiver<Event>>>,
    clients: Vec<Vec<Sender<Message>>>,
    faults: Option<FaultPlan>,
}

impl ThreadSession {
    /// Starts building a session of `size` brokers with tree `arity`;
    /// `factory` produces each rank's modules.
    pub fn builder<F>(size: u32, arity: u32, factory: F) -> ThreadSessionBuilder
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut b = ThreadSessionBuilder {
            configs: Vec::new(),
            modules: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            clients: Vec::new(),
            faults: None,
        };
        for r in 0..size {
            let rank = Rank(r);
            let (tx, rx) = channel();
            b.configs.push(BrokerConfig::new(rank, size).with_arity(arity));
            b.modules.push(factory(rank));
            b.senders.push(tx);
            b.receivers.push(Some(rx));
            b.clients.push(Vec::new());
        }
        b
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Stops all broker threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles {
            // flux-lint: allow(block) — ordered teardown: every broker
            // was just sent Shutdown, so each join only waits for its
            // thread to drain and exit.
            let _ = h.join();
        }
    }
}

impl ThreadSessionBuilder {
    /// Overrides one rank's broker config (e.g. a faster heartbeat).
    pub fn set_config(&mut self, rank: Rank, config: BrokerConfig) -> &mut Self {
        self.configs[rank.index()] = config;
        self
    }

    /// Applies a fault-injection plan to every broker's links.
    pub fn set_faults(&mut self, plan: &FaultPlan) -> &mut Self {
        self.faults = Some(plan.clone()).filter(|p| !p.is_empty());
        self
    }

    /// Attaches a client to `rank`'s broker, returning its handle.
    pub fn attach_client(&mut self, rank: Rank) -> ThreadClient {
        let (tx, rx) = channel();
        let client_id = self.clients[rank.index()].len() as ClientId;
        self.clients[rank.index()].push(tx);
        LiveClient { rank, client_id, tx: self.senders[rank.index()].clone(), rx }
    }

    /// Launches all broker threads. The session epoch (t = 0) is shared.
    pub fn start(mut self) -> ThreadSession {
        let epoch = Instant::now();
        let size = self.configs.len() as u32;
        let mut handles = Vec::new();
        for (idx, rx) in self.receivers.iter_mut().enumerate() {
            let host = BrokerHost {
                broker: Broker::new(
                    self.configs[idx].clone(),
                    std::mem::take(&mut self.modules[idx]),
                ),
                // flux-lint: allow(panic) — each receiver is taken exactly
                // once here; a second take is a builder bug.
                rx: rx.take().expect("receiver present"),
                peers: ChannelPeers { rank: Rank::from(idx), peers: self.senders.clone() },
                clients: std::mem::take(&mut self.clients[idx]),
                epoch,
                timers: BinaryHeap::new(),
                faults: self.faults.as_ref().map(|p| p.for_sender(Rank::from(idx))),
                delayed: BinaryHeap::new(),
                delay_seq: 0,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("flux-broker-{idx}"))
                    .spawn(move || host.run())
                    // flux-lint: allow(panic) — setup-time thread spawn;
                    // a session that cannot start has nothing to degrade
                    // to.
                    .expect("spawn broker thread"),
            );
        }
        ThreadSession { size, senders: self.senders, handles }
    }
}
