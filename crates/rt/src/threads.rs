//! Comms sessions on real OS threads.
//!
//! One thread per broker; crossbeam channels stand in for the prototype's
//! ØMQ TCP/IPC sockets (same guarantees: reliable, per-link FIFO).
//! Timers are kept in a per-thread heap and serviced with
//! `recv_timeout`, so a broker thread sleeps unless it has traffic or a
//! due timer — brokers are quiet when the session is quiet, matching the
//! low-noise design goal.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule, Input, Output};
use flux_wire::{Message, MsgType, Plane, Rank};
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// What flows into a broker thread.
enum Event {
    FromBroker { from: Rank, msg: Message },
    FromClient { client: ClientId, msg: Message },
    Shutdown,
}

fn plane_of(msg: &Message) -> Plane {
    match msg.header.msg_type {
        MsgType::Event => Plane::Event,
        _ if msg.header.dst.is_some() => Plane::Ring,
        _ => Plane::Tree,
    }
}

/// A client connection to a broker in a [`ThreadSession`].
pub struct ThreadClient {
    /// The rank this client is attached to.
    pub rank: Rank,
    /// The broker-local client id.
    pub client_id: ClientId,
    tx: Sender<Event>,
    rx: Receiver<Message>,
}

impl ThreadClient {
    /// Sends a request to the local broker.
    pub fn send(&self, msg: Message) {
        let _ = self.tx.send(Event::FromClient { client: self.client_id, msg });
    }

    /// Receives the next message (response or subscribed event), waiting
    /// up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }
}

struct BrokerHost {
    broker: Broker,
    rank: Rank,
    rx: Receiver<Event>,
    peers: Vec<Sender<Event>>,
    clients: Vec<Sender<Message>>,
    epoch: Instant,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
}

impl BrokerHost {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn absorb(&mut self, outs: Vec<Output>) {
        for out in outs {
            match out {
                Output::ToBroker { to, msg, .. } => {
                    let _ = self.peers[to.index()].send(Event::FromBroker { from: self.rank, msg });
                }
                Output::ToClient { client, msg } => {
                    if let Some(tx) = self.clients.get(client as usize) {
                        let _ = tx.send(msg);
                    }
                }
                Output::SetTimer { delay_ns, token } => {
                    let at = Instant::now() + Duration::from_nanos(delay_ns);
                    self.timers.push(std::cmp::Reverse((at, token)));
                }
            }
        }
    }

    fn run(mut self) {
        let outs = self.broker.start(self.now_ns());
        self.absorb(outs);
        loop {
            // Fire due timers.
            let now = Instant::now();
            while let Some(&std::cmp::Reverse((at, token))) = self.timers.peek() {
                if at > now {
                    break;
                }
                self.timers.pop();
                let now_ns = self.now_ns();
                let outs = self.broker.handle(now_ns, Input::Timer { token });
                self.absorb(outs);
            }
            // Sleep until traffic or the next timer.
            let timeout = self
                .timers
                .peek()
                .map(|&std::cmp::Reverse((at, _))| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(250));
            match self.rx.recv_timeout(timeout) {
                Ok(Event::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => continue,
                Ok(Event::FromBroker { from, msg }) => {
                    let input = Input::FromBroker { plane: plane_of(&msg), from, msg };
                    let now_ns = self.now_ns();
                    let outs = self.broker.handle(now_ns, input);
                    self.absorb(outs);
                }
                Ok(Event::FromClient { client, msg }) => {
                    let now_ns = self.now_ns();
                    let outs = self.broker.handle(now_ns, Input::FromClient { client, msg });
                    self.absorb(outs);
                }
            }
        }
    }
}

/// A comms session on OS threads: call [`ThreadSession::builder`], attach
/// clients, then [`ThreadSessionBuilder::start`].
pub struct ThreadSession {
    senders: Vec<Sender<Event>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Builder collecting brokers and client attachments before the threads
/// launch.
pub struct ThreadSessionBuilder {
    configs: Vec<BrokerConfig>,
    modules: Vec<Vec<Box<dyn CommsModule>>>,
    senders: Vec<Sender<Event>>,
    receivers: Vec<Option<Receiver<Event>>>,
    clients: Vec<Vec<Sender<Message>>>,
}

impl ThreadSession {
    /// Starts building a session of `size` brokers with tree `arity`;
    /// `factory` produces each rank's modules.
    pub fn builder<F>(size: u32, arity: u32, factory: F) -> ThreadSessionBuilder
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut b = ThreadSessionBuilder {
            configs: Vec::new(),
            modules: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            clients: Vec::new(),
        };
        for r in 0..size {
            let rank = Rank(r);
            let (tx, rx) = unbounded();
            b.configs.push(BrokerConfig::new(rank, size).with_arity(arity));
            b.modules.push(factory(rank));
            b.senders.push(tx);
            b.receivers.push(Some(rx));
            b.clients.push(Vec::new());
        }
        b
    }

    /// Stops all broker threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

impl ThreadSessionBuilder {
    /// Overrides one rank's broker config (e.g. a faster heartbeat).
    pub fn set_config(&mut self, rank: Rank, config: BrokerConfig) -> &mut Self {
        self.configs[rank.index()] = config;
        self
    }

    /// Attaches a client to `rank`'s broker, returning its handle.
    pub fn attach_client(&mut self, rank: Rank) -> ThreadClient {
        let (tx, rx) = unbounded();
        let client_id = self.clients[rank.index()].len() as ClientId;
        self.clients[rank.index()].push(tx);
        ThreadClient { rank, client_id, tx: self.senders[rank.index()].clone(), rx }
    }

    /// Launches all broker threads. The session epoch (t = 0) is shared.
    pub fn start(mut self) -> ThreadSession {
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (idx, rx) in self.receivers.iter_mut().enumerate() {
            let host = BrokerHost {
                broker: Broker::new(
                    self.configs[idx].clone(),
                    std::mem::take(&mut self.modules[idx]),
                ),
                rank: Rank::from(idx),
                rx: rx.take().expect("receiver present"),
                peers: self.senders.clone(),
                clients: std::mem::take(&mut self.clients[idx]),
                epoch,
                timers: BinaryHeap::new(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("flux-broker-{idx}"))
                    .spawn(move || host.run())
                    .expect("spawn broker thread"),
            );
        }
        ThreadSession { senders: self.senders, handles }
    }
}
