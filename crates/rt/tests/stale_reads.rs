//! Simulator-side stale-read coverage.
//!
//! The no-stale-reads check itself lives in `flux_rt::conformance` and
//! runs against every live transport from `tests/conformance.rs`; this
//! file keeps the simulator instantiation plus the deterministic
//! interleaving proof that the scenario really exercises the slave-side
//! lookup memo (live schedules can't guarantee that).

use flux_broker::CommsModule;
use flux_kvs::{KvsConfig, KvsModule};
use flux_modules::BarrierModule;
use flux_rt::conformance::check_no_stale_reads;
use flux_rt::script::Op;
use flux_rt::transport::{ScriptTransport, SimTransport};
use flux_value::Value;
use flux_wire::Rank;

fn modules(_r: Rank) -> Vec<Box<dyn CommsModule>> {
    // Defaults: master-side push batching on, slave lookup memo on —
    // exactly the optimized hot path the invalidation rule protects.
    vec![
        Box::new(KvsModule::with_config(KvsConfig::default())),
        Box::new(BarrierModule::new()),
    ]
}

#[test]
fn no_stale_reads_after_wait_version_on_sim() {
    check_no_stale_reads(&SimTransport::default());
}

/// On the simulator the interleaving is fixed: the pause guarantees the
/// reader's first two gets land between the commits, so the memo is
/// populated with v1 and *must* be invalidated by the v2 root switch.
#[test]
fn sim_interleaving_actually_exercises_the_memo() {
    let writer = vec![
        Op::Put { key: "sr.k".into(), val: Value::Int(1) },
        Op::Commit,
        Op::Pause(200_000),
        Op::Put { key: "sr.k".into(), val: Value::Int(2) },
        Op::Commit,
    ];
    let reader = vec![
        Op::WaitVersion(1),
        Op::Get { key: "sr.k".into() },
        Op::Get { key: "sr.k".into() },
        Op::WaitVersion(2),
        Op::Get { key: "sr.k".into() },
    ];
    let scripts = vec![(Rank(1), writer), (Rank(3), reader)];
    let report = SimTransport::default().run_scripts(4, 2, &modules, scripts);
    let reader = &report.outcomes[1];
    assert_eq!(reader.replies[1].get("v"), Some(&Value::Int(1)), "first read sees v1");
    assert_eq!(reader.replies[2].get("v"), Some(&Value::Int(1)), "memo re-read sees v1");
    assert_eq!(reader.replies[4].get("v"), Some(&Value::Int(2)), "post-wait read sees v2");
}
