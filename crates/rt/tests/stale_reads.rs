//! No stale reads after `wait_version`, on every transport.
//!
//! The slave-side lookup memo caches `(key, want_dir) → object` and must
//! be invalidated when the broker switches roots — *before* any
//! `wait_version` waiter is answered. A reader that waits for version N
//! and then gets a key must therefore see at least the version-N value,
//! never a memoized older object. The same script runs on the
//! simulator, the threaded runtime, and loopback TCP.

use flux_broker::CommsModule;
use flux_kvs::{KvsConfig, KvsModule};
use flux_modules::BarrierModule;
use flux_rt::script::Op;
use flux_rt::transport::{ScriptTransport, SimTransport, TcpTransport, ThreadTransport};
use flux_value::Value;
use flux_wire::Rank;

fn modules(_r: Rank) -> Vec<Box<dyn CommsModule>> {
    // Defaults: master-side push batching on, slave lookup memo on —
    // exactly the optimized hot path the invalidation rule protects.
    vec![
        Box::new(KvsModule::with_config(KvsConfig::default())),
        Box::new(BarrierModule::new()),
    ]
}

/// Writer commits v1 and (after a pause) v2 of the same key; a reader on
/// a different leaf waits for each version and reads. The read after
/// `wait_version(2)` must see v2 — if the memo populated by the earlier
/// read survived the root switch, it would serve v1.
fn stale_read_script() -> Vec<(Rank, Vec<Op>)> {
    let writer = vec![
        Op::Put { key: "sr.k".into(), val: Value::Int(1) },
        Op::Commit,
        Op::Pause(200_000),
        Op::Put { key: "sr.k".into(), val: Value::Int(2) },
        Op::Commit,
    ];
    let reader = vec![
        Op::WaitVersion(1),
        Op::Get { key: "sr.k".into() }, // populates the lookup memo
        Op::Get { key: "sr.k".into() }, // served from the memo
        Op::WaitVersion(2),
        Op::Get { key: "sr.k".into() }, // must NOT be the memoized v1
    ];
    vec![(Rank(1), writer), (Rank(3), reader)]
}

fn check_no_stale_reads(transport: &dyn ScriptTransport) {
    let report = transport.run_scripts(4, 2, &modules, stale_read_script());
    for (i, o) in report.outcomes.iter().enumerate() {
        assert!(o.finished, "{}: script {i} unfinished", transport.name());
        assert!(
            o.op_err.iter().all(|&e| e == 0),
            "{}: script {i} errors {:?}",
            transport.name(),
            o.op_err
        );
    }
    let reader = &report.outcomes[1];
    // The first read happens at version >= 1: value 1 or 2 are both
    // legal (the second commit may already have landed).
    let first = reader.replies[1].get("v").and_then(Value::as_int).unwrap();
    assert!(first == 1 || first == 2, "{}: first read {first}", transport.name());
    // The memoized re-read must agree with the first (monotonic reads).
    let second = reader.replies[2].get("v").and_then(Value::as_int).unwrap();
    assert!(second >= first, "{}: re-read went backwards", transport.name());
    // After wait_version(2) only v2 is acceptable.
    let last = reader.replies[4].get("v").and_then(Value::as_int).unwrap();
    assert_eq!(last, 2, "{}: stale read after wait_version(2)", transport.name());
}

#[test]
fn no_stale_reads_after_wait_version_on_sim() {
    check_no_stale_reads(&SimTransport::default());
}

#[test]
fn no_stale_reads_after_wait_version_on_threads() {
    check_no_stale_reads(&ThreadTransport);
}

#[test]
fn no_stale_reads_after_wait_version_on_tcp() {
    check_no_stale_reads(&TcpTransport::default());
}

/// On the simulator the interleaving is fixed: the pause guarantees the
/// reader's first two gets land between the commits, so the memo is
/// populated with v1 and *must* be invalidated by the v2 root switch.
#[test]
fn sim_interleaving_actually_exercises_the_memo() {
    let report = SimTransport::default().run_scripts(4, 2, &modules, stale_read_script());
    let reader = &report.outcomes[1];
    assert_eq!(reader.replies[1].get("v"), Some(&Value::Int(1)), "first read sees v1");
    assert_eq!(reader.replies[2].get("v"), Some(&Value::Int(1)), "memo re-read sees v1");
    assert_eq!(reader.replies[4].get("v"), Some(&Value::Int(2)), "post-wait read sees v2");
}
