//! The shared transport-conformance battery, instantiated per runtime.
//!
//! Every live transport must pass the identical behavioural checks
//! (`flux_rt::conformance`): handshake + rank-addressed RPC, KVS
//! put/commit/get + barrier, watch streams, a 32-deep pipelined request
//! window, a 16-broker fence, the stale-read guard, and ordered
//! shutdown under load. `tcp` here is the poll-based reactor runtime —
//! this file is the proof it is a drop-in replacement for the
//! thread-per-link transport it replaced.

flux_rt::transport_conformance!(threads, flux_rt::transport::ThreadTransport);
flux_rt::transport_conformance!(reactor_tcp, flux_rt::transport::TcpTransport::default());
