//! Simulator-specific runtime tests (virtual time, determinism,
//! kill-broker semantics). The behavioural battery shared by every
//! transport lives in `flux_rt::conformance` and is instantiated per
//! transport in `tests/conformance.rs`.

use flux_broker::CommsModule;
use flux_modules::standard_modules;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::{NetParams, PendingKind, SimTime};
use flux_value::Value;
use flux_wire::Rank;

fn kvs_only(_r: Rank) -> Vec<Box<dyn CommsModule>> {
    vec![
        Box::new(flux_kvs::KvsModule::new()),
        Box::new(flux_modules::BarrierModule::new()),
    ]
}

#[test]
fn sim_put_commit_get_across_session() {
    let mut s = SimSession::new(64, 2, NetParams::default(), kvs_only);
    let writer = ScriptClient::spawn(
        &mut s,
        Rank(63),
        vec![
            Op::Put { key: "sim.x".into(), val: Value::Int(7) },
            Op::Commit,
        ],
    );
    let end = s.run_until_quiet(Some(5_000_000)).expect("no livelock");
    assert!(writer.borrow().finished);
    assert!(writer.borrow().op_err.iter().all(|&e| e == 0));
    assert!(end > SimTime::ZERO);

    // A reader at another leaf, in a second phase.
    let reader = ScriptClient::spawn(&mut s, Rank(33), vec![Op::Get { key: "sim.x".into() }]);
    s.run_until_quiet(Some(5_000_000)).expect("no livelock");
    let out = reader.borrow();
    assert!(out.finished);
    assert_eq!(out.op_err, [0]);
    assert_eq!(out.replies[0].get("v"), Some(&Value::Int(7)));
}

#[test]
fn sim_fence_synchronizes_all_writers() {
    let size = 32u32;
    let mut s = SimSession::new(size, 2, NetParams::default(), kvs_only);
    let outcomes: Vec<_> = (0..size)
        .map(|r| {
            ScriptClient::spawn(
                &mut s,
                Rank(r),
                vec![
                    Op::Put { key: format!("f.k{r}"), val: Value::Int(i64::from(r)) },
                    Op::Fence { name: "all".into(), nprocs: u64::from(size) },
                    Op::Get { key: format!("f.k{}", (r + 1) % size) },
                ],
            )
        })
        .collect();
    s.run_until_quiet(Some(5_000_000)).expect("no livelock");
    for (r, o) in outcomes.iter().enumerate() {
        let o = o.borrow();
        assert!(o.finished, "rank {r}");
        assert_eq!(o.op_err, [0, 0, 0], "rank {r}");
        // The post-fence read of the neighbour's key succeeds.
        let want = i64::try_from((r + 1) % size as usize).unwrap();
        assert_eq!(o.replies[2].get("v"), Some(&Value::Int(want)), "rank {r}");
        // The fence completes strictly after the put.
        assert!(o.op_done[1] > o.op_done[0]);
    }
}

#[test]
fn sim_is_deterministic() {
    let run = || {
        let mut s = SimSession::new(16, 2, NetParams::default(), kvs_only);
        let outs: Vec<_> = (0..16)
            .map(|r| {
                ScriptClient::spawn(
                    &mut s,
                    Rank(r),
                    vec![
                        Op::Put { key: format!("d.k{r}"), val: Value::from("v".repeat(64)) },
                        Op::Fence { name: "d".into(), nprocs: 16 },
                    ],
                )
            })
            .collect();
        let end = s.run_until_quiet(Some(5_000_000)).expect("no livelock");
        let times: Vec<Vec<u64>> = outs
            .iter()
            .map(|o| o.borrow().op_done.iter().map(|t| t.as_nanos()).collect())
            .collect();
        (end, times, s.engine().stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn sim_sixteen_clients_per_node_like_the_paper() {
    // The paper fully populates each node with 16 processes.
    let nodes = 8u32;
    let procs_per_node = 16u32;
    let total = u64::from(nodes * procs_per_node);
    let mut s = SimSession::new(nodes, 2, NetParams::default(), kvs_only);
    let mut outcomes = Vec::new();
    for node in 0..nodes {
        for p in 0..procs_per_node {
            let gid = node * procs_per_node + p;
            outcomes.push(ScriptClient::spawn(
                &mut s,
                Rank(node),
                vec![
                    Op::Put { key: format!("m.k{gid}"), val: Value::Int(i64::from(gid)) },
                    Op::Fence { name: "m".into(), nprocs: total },
                ],
            ));
        }
    }
    s.run_until_quiet(Some(5_000_000)).expect("no livelock");
    for (i, o) in outcomes.iter().enumerate() {
        let o = o.borrow();
        assert!(o.finished, "proc {i}");
        assert_eq!(o.op_err, [0, 0], "proc {i}");
    }
}

#[test]
fn sim_failure_detection_and_selfheal_in_virtual_time() {
    // Full module set (hb + live drive detection).
    let mut s = SimSession::new(15, 2, NetParams::default(), |_| standard_modules());
    // Let the session settle (resvc fence + a few heartbeats).
    s.run_until(SimTime::from_nanos(500_000_000));
    s.kill_broker(Rank(5));
    // Heartbeat period 100ms, miss limit 3: detection within ~1s.
    s.run_until(SimTime::from_nanos(2_000_000_000));
    // Rank 11 (child of dead 5) can still commit to the KVS.
    let orphan = ScriptClient::spawn(
        &mut s,
        Rank(11),
        vec![
            Op::Put { key: "heal.k".into(), val: Value::from("alive") },
            Op::Commit,
            Op::Get { key: "heal.k".into() },
        ],
    );
    s.run_until(SimTime::from_nanos(4_000_000_000));
    let o = orphan.borrow();
    assert!(o.finished, "orphaned rank finished its script");
    assert_eq!(o.op_err, [0, 0, 0]);
    assert_eq!(o.replies[2].get("v"), Some(&Value::from("alive")));
}

#[test]
fn sim_kill_broker_forgets_victim_and_drops_its_ghost_traffic() {
    // Regression: `kill_broker` used to leave the victim registered in
    // the address book, so a message already on the wire from the dead
    // broker was still attributed to it and processed by the receiver —
    // here, a ghost `kvs.push` would advance the master's version on
    // behalf of a broker that died before its commit arrived.
    let mut s = SimSession::new(2, 2, NetParams::default(), kvs_only);
    let victim = s.broker_actor(Rank(1));
    let root = s.broker_actor(Rank(0));
    let committer = ScriptClient::spawn(
        &mut s,
        Rank(1),
        vec![Op::Put { key: "ghost.k".into(), val: Value::Int(1) }, Op::Commit],
    );

    // Step one event at a time until rank 1's commit batch is in flight
    // to the root, then kill the sender mid-wire.
    let mut steps = 0;
    loop {
        let pend = s.engine().pending_events();
        let push_on_wire = pend.iter().any(|e| {
            e.to == root
                && matches!(&e.kind,
                    PendingKind::Message { from, topic, .. }
                        if *from == victim && topic.as_str() == "kvs.push")
        });
        if push_on_wire {
            break;
        }
        let next = pend.first().expect("commit batch never left rank 1").seq;
        assert!(s.engine_mut().dispatch_pending(next));
        steps += 1;
        assert!(steps < 10_000, "runaway schedule before the push appeared");
    }
    s.kill_broker(Rank(1));
    assert!(!s.is_broker_actor(victim), "killed broker must be forgotten");
    s.run_until_quiet(None).expect("unbounded runs cannot livelock");
    assert!(!committer.borrow().finished, "the dead broker's client never hears back");

    // The ghost push was ignored at the root: the master never committed.
    let check = ScriptClient::spawn(&mut s, Rank(0), vec![Op::GetVersion]);
    s.run_until_quiet(None).expect("unbounded runs cannot livelock");
    let o = check.borrow();
    assert!(o.finished);
    assert_eq!(o.op_err, [0]);
    assert_eq!(
        o.replies[0].get("version").and_then(Value::as_uint),
        Some(0),
        "a commit from a dead broker must not advance the master"
    );
}
