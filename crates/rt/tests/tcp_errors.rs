//! TCP framing and handshake error paths: a hostile or broken peer must
//! never hang or crash a session.
//!
//! Frame-level decoding errors are asserted directly against
//! `flux_wire::frame`; then a real two-broker `TcpSession` is abused
//! with garbage handshakes, mid-frame disconnects, and an oversized
//! length prefix, and must keep serving clients throughout.

use flux_broker::client::ClientCore;
use flux_modules::standard_modules;
use flux_rt::tcp::TcpSession;
use flux_value::Value;
use flux_wire::frame::{read_frame, write_frame, MAX_FRAME};
use flux_wire::{Message, MsgId, Rank, Topic};
use std::io::{self, Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

fn sample_msg() -> Message {
    Message::request(
        Topic::new("kvs.put").unwrap(),
        MsgId { origin: Rank(1), seq: 7 },
        Rank(1),
        Value::from_pairs([("k", Value::from("a.b")), ("v", Value::from(7i64))]),
    )
}

/// A stream that ends inside a frame body decodes to `UnexpectedEof`,
/// not a hang or a partial message.
#[test]
fn mid_frame_disconnect_is_unexpected_eof() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &sample_msg(), MAX_FRAME).unwrap();
    for cut in [1, 3, buf.len() / 2, buf.len() - 1] {
        let mut r = Cursor::new(&buf[..cut]);
        let err = read_frame(&mut r, MAX_FRAME).unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::UnexpectedEof,
            "cut at {cut}: {err:?}"
        );
    }
}

/// A length prefix above the cap is rejected as `InvalidData` before any
/// allocation, even if no body follows.
#[test]
fn oversized_length_prefix_is_rejected() {
    let len = (MAX_FRAME as u32) + 1;
    let mut buf = len.to_le_bytes().to_vec();
    buf.extend_from_slice(&[0u8; 16]);
    let err = read_frame(&mut Cursor::new(&buf), MAX_FRAME).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("exceeds cap"), "{err}");
}

/// A frame whose body is not a decodable message is `InvalidData`.
#[test]
fn garbage_body_is_invalid_data() {
    let mut buf = 8u32.to_le_bytes().to_vec();
    buf.extend_from_slice(b"notamsg!");
    let err = read_frame(&mut Cursor::new(&buf), MAX_FRAME).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

/// A live session shrugs off hostile connections: a handshake naming an
/// out-of-range rank, a connection that dies mid-handshake, a valid
/// handshake followed by a truncated frame, and a valid handshake
/// followed by an oversized length prefix. After all four, the session
/// still routes RPCs between brokers.
#[test]
fn session_survives_hostile_peers() {
    let mut builder = TcpSession::builder(2, 2, |_| standard_modules());
    let client = builder.attach_client(Rank(1));
    let session = builder.start();
    let addr = session.addrs()[0];
    let timeout = Duration::from_secs(10);

    // 1. Handshake claiming a rank outside the session.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&9999u32.to_le_bytes()).unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, &sample_msg(), MAX_FRAME).unwrap();
        let _ = s.write_all(&frame);
    }
    // 2. Connection dying two bytes into the handshake.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0u8, 0]).unwrap();
    }
    // 3. Valid handshake, then a frame truncated mid-body.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&1u32.to_le_bytes()).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
    }
    // 4. Valid handshake, then a length prefix far above the cap.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&1u32.to_le_bytes()).unwrap();
        s.write_all(&(64u32 * 1024 * 1024).to_le_bytes()).unwrap();
    }

    // The session still works: rank-addressed ping crosses the real
    // sockets from rank 1's client to rank 0 and back.
    let mut core = ClientCore::new(Rank(1), client.client_id);
    client.send(core.request_to(Rank(0), Topic::from_static("cmb.ping"), Value::object(), 1));
    let pong = client.recv_timeout(timeout).expect("pong after hostile peers");
    assert_eq!(pong.payload.get("pong"), Some(&Value::Int(0)));

    // And a KVS round trip still commits through the overlay.
    client.send(core.request(
        Topic::from_static("kvs.put"),
        Value::from_pairs([("k", Value::from("err.k")), ("v", Value::from("ok"))]),
        2,
    ));
    assert!(!client.recv_timeout(timeout).expect("put ack").is_error());
    client.send(core.request(Topic::from_static("kvs.commit"), Value::object(), 3));
    assert!(!client.recv_timeout(timeout).expect("commit ack").is_error());
    client.send(core.request(
        Topic::from_static("kvs.get"),
        Value::from_pairs([("k", Value::from("err.k"))]),
        4,
    ));
    let got = client.recv_timeout(timeout).expect("get reply");
    assert_eq!(got.payload.get("v"), Some(&Value::from("ok")));

    session.shutdown();
}
