//! Threaded-runtime stress: many concurrent client threads hammering one
//! session; the wall-clock runtime must preserve the same semantics the
//! simulator proves.

use flux_broker::CommsModule;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_modules::BarrierModule;
use flux_rt::threads::ThreadSession;
use flux_value::Value;
use flux_wire::Rank;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

/// 24 client threads across 8 broker threads: everyone puts a unique key,
/// fences, then reads a neighbour's key. One wall-clock run of the KAP
/// bootstrap pattern.
#[test]
fn concurrent_fence_and_cross_reads() {
    let nodes = 8u32;
    let procs = 24u64;
    let mut builder = ThreadSession::builder(nodes, 2, |_| {
        vec![
            Box::new(flux_kvs::KvsModule::new()) as Box<dyn CommsModule>,
            Box::new(BarrierModule::new()),
        ]
    });
    let conns: Vec<_> = (0..procs)
        .map(|g| builder.attach_client(Rank((g % u64::from(nodes)) as u32)))
        .collect();
    let session = builder.start();

    let handles: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(g, conn)| {
            std::thread::spawn(move || {
                let mut kvs = KvsClient::new(conn.rank, conn.client_id);
                let reply = |conn: &flux_rt::threads::ThreadClient,
                             kvs: &mut KvsClient|
                 -> KvsReply {
                    let msg = conn.recv_timeout(TIMEOUT).expect("reply in time");
                    match kvs.deliver(msg) {
                        KvsDelivery::Reply { reply, .. } => reply,
                        other => panic!("rank {g}: {other:?}"),
                    }
                };
                conn.send(kvs.put(&format!("stress.k{g}"), Value::Int(g as i64), 1));
                assert_eq!(reply(&conn, &mut kvs), KvsReply::Ack);
                conn.send(kvs.fence("stress", procs, 2));
                assert!(matches!(reply(&conn, &mut kvs), KvsReply::Version { .. }));
                let peer = (g as u64 + 7) % procs;
                conn.send(kvs.get(&format!("stress.k{peer}"), 3));
                assert_eq!(
                    reply(&conn, &mut kvs),
                    KvsReply::Value(Value::Int(peer as i64)),
                    "rank {g} reads peer {peer}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    session.shutdown();
}

/// Independent commit storms from several threads with batching pinned
/// off: every commit gets a distinct version (the master serializes)
/// and all data lands.
#[test]
fn commit_storm_serializes_at_master() {
    let nodes = 4u32;
    let writers = 8u64;
    let per_writer = 5u64;
    let mut builder = ThreadSession::builder(nodes, 2, |_| {
        // batch_window_ns = 0: each push applies immediately, so the
        // per-push distinct-version property below is exact.
        vec![Box::new(flux_kvs::KvsModule::with_config(flux_kvs::KvsConfig {
            batch_window_ns: 0,
            ..flux_kvs::KvsConfig::default()
        })) as Box<dyn CommsModule>]
    });
    let conns: Vec<_> = (0..writers)
        .map(|g| builder.attach_client(Rank((g % u64::from(nodes)) as u32)))
        .collect();
    let session = builder.start();

    let handles: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(g, conn)| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut kvs = KvsClient::new(conn.rank, conn.client_id);
                let mut versions = Vec::new();
                for i in 0..per_writer {
                    conn.send(kvs.put(&format!("storm.w{g}.i{i}"), Value::Int(i as i64), 1));
                    let _ = conn.recv_timeout(TIMEOUT).expect("put ack");
                    conn.send(kvs.commit(2));
                    let msg = conn.recv_timeout(TIMEOUT).expect("commit reply");
                    match kvs.deliver(msg) {
                        KvsDelivery::Reply {
                            reply: KvsReply::Version { version, .. }, ..
                        } => versions.push(version),
                        other => panic!("writer {g}: {other:?}"),
                    }
                }
                versions
            })
        })
        .collect();
    let mut all_versions: Vec<u64> = Vec::new();
    for h in handles {
        let versions = h.join().expect("writer thread");
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "per-writer monotone");
        all_versions.extend(versions);
    }
    all_versions.sort_unstable();
    let before = all_versions.len();
    all_versions.dedup();
    assert_eq!(all_versions.len(), before, "every commit got a distinct version");
    assert_eq!(before as u64, writers * per_writer);
    session.shutdown();
}

/// The same storm with the default (batching) config: concurrent pushes
/// may coalesce into shared versions, but per-writer versions stay
/// strictly monotone, no version exceeds the commit count, and all the
/// data still lands.
#[test]
fn commit_storm_coalesces_with_batching() {
    let nodes = 4u32;
    let writers = 8u64;
    let per_writer = 5u64;
    let mut builder = ThreadSession::builder(nodes, 2, |_| {
        vec![Box::new(flux_kvs::KvsModule::new()) as Box<dyn CommsModule>]
    });
    let conns: Vec<_> = (0..writers)
        .map(|g| builder.attach_client(Rank((g % u64::from(nodes)) as u32)))
        .collect();
    let reader_conn = builder.attach_client(Rank(1));
    let session = builder.start();

    let handles: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(g, conn)| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut kvs = KvsClient::new(conn.rank, conn.client_id);
                let mut versions = Vec::new();
                for i in 0..per_writer {
                    conn.send(kvs.put(&format!("coal.w{g}.i{i}"), Value::Int(i as i64), 1));
                    let _ = conn.recv_timeout(TIMEOUT).expect("put ack");
                    conn.send(kvs.commit(2));
                    let msg = conn.recv_timeout(TIMEOUT).expect("commit reply");
                    match kvs.deliver(msg) {
                        KvsDelivery::Reply {
                            reply: KvsReply::Version { version, .. }, ..
                        } => versions.push(version),
                        other => panic!("writer {g}: {other:?}"),
                    }
                }
                versions
            })
        })
        .collect();
    let mut max_version = 0u64;
    for h in handles {
        let versions = h.join().expect("writer thread");
        // Read-your-writes survives batching: a later commit from the
        // same writer always lands at a strictly newer version.
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "per-writer monotone");
        max_version = max_version.max(*versions.last().unwrap());
    }
    assert!(
        max_version <= writers * per_writer,
        "coalescing never inflates the version ({max_version})"
    );
    // Every key is readable afterwards.
    let mut reader = KvsClient::new(reader_conn.rank, reader_conn.client_id);
    for g in 0..writers {
        for i in 0..per_writer {
            reader_conn.send(reader.get(&format!("coal.w{g}.i{i}"), 100 + g * 10 + i));
            let msg = reader_conn.recv_timeout(TIMEOUT).expect("get reply");
            match reader.deliver(msg) {
                KvsDelivery::Reply { reply: KvsReply::Value(v), .. } => {
                    assert_eq!(v, Value::Int(i as i64), "coal.w{g}.i{i}");
                }
                other => panic!("reader at w{g}.i{i}: {other:?}"),
            }
        }
    }
    session.shutdown();
}
