//! Pipelining and partial-frame torture tests for the reactor runtime.
//!
//! Socket clients speak length-prefixed frames over one `TcpStream` and
//! may pipeline arbitrarily many requests before reading a reply. The
//! reactor must reassemble frames fed one byte at a time, keep MsgId
//! matching correct with a full window in flight, and survive a broker
//! blackout mid-pipeline.
//!
//! The interleaving fuzzer is seeded (SplitMix64). Reproduce a failing
//! seed with `FLUX_PIPE_SEED=<seed>`; widen the sweep with
//! `FLUX_PIPE_SEEDS=<count>` (default 8).

use flux_broker::client::{ClientCore, Delivery};
use flux_broker::BrokerConfig;
use flux_core::rng::Rng;
use flux_modules::standard_modules;
use flux_rt::tcp::{connect_socket_client, TcpSession};
use flux_rt::FaultPlan;
use flux_value::Value;
use flux_wire::frame::{self, FrameDecoder, MAX_FRAME};
use flux_wire::{Message, Rank, Topic};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

/// A raw socket client: one stream, one `ClientCore` for MsgId
/// namespacing, one `FrameDecoder` for reply reassembly.
struct SocketClient {
    stream: TcpStream,
    core: ClientCore,
    id: u32,
    dec: FrameDecoder,
    scratch: Vec<u8>,
}

impl SocketClient {
    fn connect(addr: std::net::SocketAddr, rank: Rank) -> SocketClient {
        let (stream, id) = connect_socket_client(addr, TIMEOUT).expect("socket client handshake");
        SocketClient {
            stream,
            core: ClientCore::new(rank, id),
            id,
            dec: FrameDecoder::new(),
            scratch: Vec::new(),
        }
    }

    fn send(&mut self, msg: &Message) {
        frame::write_frame_into(&mut self.stream, msg, MAX_FRAME, &mut self.scratch)
            .expect("write frame");
    }

    /// Blocks (with the stream's read timeout) until the next frame.
    fn recv(&mut self, deadline: Instant) -> Message {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(msg) = self.dec.next_message(MAX_FRAME).expect("well-framed reply") {
                return msg;
            }
            assert!(Instant::now() < deadline, "timed out waiting for a reply frame");
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("broker closed the stream mid-conversation"),
                Ok(n) => self.dec.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    /// Collects replies until every tag in `want` has been answered
    /// exactly once; returns tag → payload.
    fn collect(&mut self, want: &[u64]) -> HashMap<u64, Value> {
        let deadline = Instant::now() + TIMEOUT;
        let mut got = HashMap::new();
        while got.len() < want.len() {
            let msg = self.recv(deadline);
            match self.core.deliver(msg) {
                Delivery::Response { tag, msg } => {
                    assert!(!msg.is_error(), "tag {tag} errored: {:?}", msg.payload);
                    assert!(want.contains(&tag), "unexpected tag {tag}");
                    assert!(
                        got.insert(tag, msg.payload.into_value()).is_none(),
                        "tag {tag} answered twice"
                    );
                }
                Delivery::Event(_) | Delivery::Unmatched(_) => continue,
            }
        }
        got
    }
}

fn ping(core: &mut ClientCore, tag: u64) -> Message {
    core.request(Topic::from_static("cmb.ping"), Value::object(), tag)
}

/// The slowest possible peer: the handshake and every frame arrive one
/// byte per write. The reactor's decoder must reassemble them and the
/// replies must still match.
#[test]
fn byte_at_a_time_slow_client_completes_rpcs() {
    let builder = TcpSession::builder(2, 2, |_| standard_modules());
    let session = builder.start();
    let addr = session.addrs()[0];

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_millis(50))).expect("read timeout");
    // Drip the CLIENT_HELLO sentinel one byte at a time.
    for b in flux_rt::tcp::CLIENT_HELLO.to_le_bytes() {
        stream.write_all(&[b]).expect("hello byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut raw = [0u8; 4];
    let deadline = Instant::now() + TIMEOUT;
    let mut got = 0;
    while got < 4 {
        assert!(Instant::now() < deadline, "no id reply");
        match stream.read(&mut raw[got..]) {
            Ok(0) => panic!("broker closed during handshake"),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("handshake read failed: {e}"),
        }
    }
    let id = u32::from_le_bytes(raw);
    let mut core = ClientCore::new(Rank(0), id);

    // Three pipelined pings, every frame dripped byte by byte.
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    for tag in 0..3u64 {
        frame::write_frame_into(&mut wire, &ping(&mut core, tag), MAX_FRAME, &mut scratch)
            .expect("encode");
    }
    for b in wire {
        stream.write_all(&[b]).expect("frame byte");
        stream.flush().expect("flush");
    }

    let mut client =
        SocketClient { stream, core, id, dec: FrameDecoder::new(), scratch: Vec::new() };
    let got = client.collect(&[0, 1, 2]);
    for tag in 0..3u64 {
        assert_eq!(got[&tag].get("pong").and_then(Value::as_uint), Some(0), "tag {tag}");
    }
    session.shutdown();
}

/// Seeded interleaving fuzzer: a full pipelined window of mixed RPCs is
/// encoded into one byte stream, then written in random-length slices so
/// frame boundaries land everywhere. Every reply must match its tag, on
/// every seed in the sweep.
#[test]
fn pipelined_interleaving_fuzzer() {
    let seeds: Vec<u64> = match std::env::var("FLUX_PIPE_SEED") {
        Ok(s) => vec![s.parse().expect("FLUX_PIPE_SEED must be a u64")],
        Err(_) => {
            let n: u64 = std::env::var("FLUX_PIPE_SEEDS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(8);
            (0..n).collect()
        }
    };
    let builder = TcpSession::builder(4, 2, |_| standard_modules());
    let session = builder.start();

    for &seed in &seeds {
        let mut rng = Rng::seeded(seed);
        // Vary the attachment broker and window size by seed.
        let rank = Rank(rng.gen_range(0..4u32));
        let window = rng.gen_range(16..=64u64);
        let mut client = SocketClient::connect(session.addrs()[rank.index()], rank);

        // Encode the whole window into one buffer: puts, local pings,
        // and rank-addressed pings interleaved.
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        let mut want = Vec::new();
        for tag in 0..window {
            let msg = match tag % 3 {
                0 => client.core.request(
                    Topic::from_static("kvs.put"),
                    Value::from_pairs([
                        ("k", Value::from(format!("pipe.{seed}.{tag}"))),
                        ("v", Value::Int(tag as i64)),
                    ]),
                    tag,
                ),
                1 => client.core.request_to(
                    Rank(rng.gen_range(0..4u32)),
                    Topic::from_static("cmb.ping"),
                    Value::object(),
                    tag,
                ),
                _ => client.core.request(
                    Topic::from_static("cmb.ping"),
                    Value::object(),
                    tag,
                ),
            };
            frame::write_frame_into(&mut wire, &msg, MAX_FRAME, &mut scratch).expect("encode");
            want.push(tag);
        }

        // Feed the stream in random slices (1..=17 bytes) so length
        // prefixes and bodies tear at arbitrary offsets.
        let mut off = 0;
        while off < wire.len() {
            let n = (rng.gen_range(1..=17usize)).min(wire.len() - off);
            client.stream.write_all(&wire[off..off + n]).expect("slice write");
            client.stream.flush().expect("flush");
            off += n;
        }

        let got = client.collect(&want);
        assert_eq!(got.len(), want.len(), "seed {seed}: every tag answered exactly once");
        for (&tag, payload) in &got {
            if tag % 3 == 2 {
                assert_eq!(
                    payload.get("pong").and_then(Value::as_uint),
                    Some(u64::from(rank.0)),
                    "seed {seed}: local ping tag {tag} answered by the wrong broker"
                );
            }
        }
    }
    session.shutdown();
}

/// Two socket clients pipelining on the same broker concurrently: ids
/// must not collide and each stream must only carry its own replies.
#[test]
fn concurrent_socket_clients_get_distinct_ids_and_streams() {
    let builder = TcpSession::builder(2, 2, |_| standard_modules());
    let session = builder.start();
    let addr = session.addrs()[1];

    let mut a = SocketClient::connect(addr, Rank(1));
    let mut b = SocketClient::connect(addr, Rank(1));
    assert_ne!(a.id, b.id, "socket client ids collide");

    let window = 16u64;
    for tag in 0..window {
        let msg = ping(&mut a.core, tag);
        a.send(&msg);
        let msg = ping(&mut b.core, tag);
        b.send(&msg);
    }
    let want: Vec<u64> = (0..window).collect();
    let got_a = a.collect(&want);
    let got_b = b.collect(&want);
    assert_eq!(got_a.len() as u64, window);
    assert_eq!(got_b.len() as u64, window);
    session.shutdown();
}

/// Kill-mid-pipeline regression: a socket client on rank 3 keeps its
/// pipelined stream open while rank 1 — its tree parent — blacks out.
/// The stream must survive (no tearing, ids intact) and a pipelined
/// put/commit/get window sent mid-blackout must re-route through the
/// healed overlay and complete.
#[test]
fn kill_mid_pipeline_reroutes_and_completes() {
    const HB: u64 = 40_000_000;
    let plan = FaultPlan::new(0xF2).kill_epochs(Rank(1), 8..24, HB);
    let mut builder = TcpSession::builder(7, 2, |_| standard_modules());
    for r in 0..7 {
        let mut cfg = BrokerConfig::new(Rank(r), 7).with_arity(2);
        cfg.hb_period_ns = HB;
        builder.set_config(Rank(r), cfg);
    }
    builder.set_faults(&plan);
    let session = builder.start();
    let t0 = Instant::now();

    let mut client = SocketClient::connect(session.addrs()[3], Rank(3));

    // Phase 1 — before the blackout (t < 320ms): a pipelined window of
    // local pings and staged puts completes normally.
    for tag in 0..8u64 {
        let msg = if tag % 2 == 0 {
            ping(&mut client.core, tag)
        } else {
            client.core.request(
                Topic::from_static("kvs.put"),
                Value::from_pairs([
                    ("k", Value::from(format!("kmp.{tag}"))),
                    ("v", Value::Int(tag as i64)),
                ]),
                tag,
            )
        };
        client.send(&msg);
    }
    let want: Vec<u64> = (0..8).collect();
    client.collect(&want);

    // Phase 2 — mid-blackout, after detection (~550ms: kill at 320ms +
    // 3 missed 40ms heartbeats + slack): the orphaned subtree has been
    // re-parented; a pipelined put+commit+get must route around rank 1.
    let elapsed = t0.elapsed();
    if elapsed < Duration::from_millis(550) {
        std::thread::sleep(Duration::from_millis(550) - elapsed);
    }
    let put = client.core.request(
        Topic::from_static("kvs.put"),
        Value::from_pairs([("k", Value::from("kmp.reroute")), ("v", Value::Int(77))]),
        100,
    );
    let commit = client.core.request(Topic::from_static("kvs.commit"), Value::object(), 101);
    client.send(&put);
    client.send(&commit);
    let got = client.collect(&[100, 101]);
    assert!(
        got[&101].get("version").and_then(Value::as_uint).unwrap_or(0) >= 1,
        "commit through the re-parented tree advanced the version"
    );

    let get = client.core.request(
        Topic::from_static("kvs.get"),
        Value::from_pairs([("k", Value::from("kmp.reroute"))]),
        102,
    );
    client.send(&get);
    let got = client.collect(&[102]);
    assert_eq!(
        got[&102].get("v"),
        Some(&Value::Int(77)),
        "read-your-writes across the re-routed path"
    );
    session.shutdown();
}
